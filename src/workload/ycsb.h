#ifndef SBFT_WORKLOAD_YCSB_H_
#define SBFT_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/sim_time.h"
#include "storage/kv_store.h"
#include "storage/shard_router.h"
#include "workload/generator.h"
#include "workload/key_distribution.h"
#include "workload/transaction.h"

namespace sbft::workload {

/// Parameters of the YCSB-style key-value workload the paper evaluates
/// with (§IX: Blockbench's YCSB, 600 k records, read+write operations).
struct YcsbConfig {
  /// Records loaded into the store ("user0".."user<N-1>").
  uint64_t record_count = 600000;
  /// Value size per record, bytes.
  size_t value_size = 100;
  /// Operations per transaction (split between reads and writes).
  int ops_per_txn = 2;
  /// Fraction of operations that are writes.
  double write_fraction = 0.5;
  /// Zipfian skew (0 = uniform). Standard YCSB zipfian uses 0.99.
  double zipf_theta = 0.0;
  /// Percentage (0-100) of transactions that touch the shared hot-key set,
  /// creating read-write conflicts (Q7, Fig. 6(xi,xii)).
  double conflict_percentage = 0.0;
  /// Size of the hot-key set contended transactions fight over.
  int hot_keys = 4;
  /// Extra compute per transaction (Q4/Q9 "execution length" knob).
  SimDuration execution_cost = 0;
  /// Whether the declared read/write sets are visible to the shim before
  /// execution (§VI: known vs unknown read-write sets).
  bool rw_sets_known = true;
  /// Percentage (0-100) of transactions that touch keys on at least two
  /// shard planes (the cross-shard 2PC path). When > 0 the fraction is
  /// *controlled* in both directions — transactions the coin marks
  /// single-shard are re-rolled onto one shard, the rest are forced to
  /// span — so the achieved rate tracks the knob instead of drowning in
  /// the natural hash-collision rate (~50% at two uniform keys over two
  /// shards). 0 means uncontrolled: natural collisions only, and the
  /// generator draws no extra randomness (legacy runs stay
  /// byte-identical). No effect when shard_count == 1.
  double cross_shard_percentage = 0.0;
  /// Shard-plane count the keyspace is hash-partitioned over; must match
  /// SystemConfig::shard_count so the generator can place keys on
  /// deliberate shards.
  uint32_t shard_count = 1;
};

/// \brief Deterministic YCSB-style transaction generator.
///
/// Key popularity comes from the shared KeyDistribution interface
/// (uniform, or Gray et al. zipfian — the same sampler YCSB itself
/// uses), so the hot-key-skew knob is the one every workload family
/// shares.
class YcsbGenerator : public TxnGenerator {
 public:
  YcsbGenerator(const YcsbConfig& config, Rng rng);

  /// Loads the configured records into the store (the YCSB load phase).
  void LoadInto(storage::KvStore* store) const override;

  /// Sharded load phase: loads only the records whose key hashes to
  /// `shard` under `router` — each shard plane's store holds exactly its
  /// partition of the keyspace.
  void LoadInto(storage::KvStore* store, const storage::ShardRouter& router,
                uint32_t shard) const override;

  /// Generates the next transaction on behalf of `client`.
  Transaction Next(ActorId client) override;

  /// Key for record index i ("user<i>").
  static std::string KeyFor(uint64_t index);

  const YcsbConfig& config() const { return config_; }

 private:
  uint64_t NextKeyIndex();
  /// Rewrites the key ops of `txn` so it spans at least two shards —
  /// or exactly one when `span` is false (cross-shard knob).
  /// Deterministic rejection sampling from the rng.
  void ForceShardSpan(Transaction* txn, bool span);

  YcsbConfig config_;
  Rng rng_;
  TxnId next_txn_id_ = 1;
  std::unique_ptr<KeyDistribution> keys_;
};

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_YCSB_H_
