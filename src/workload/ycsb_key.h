#ifndef SBFT_WORKLOAD_YCSB_KEY_H_
#define SBFT_WORKLOAD_YCSB_KEY_H_

#include <cstdint>
#include <string>

namespace sbft::workload {

/// Canonical record name for YCSB index `i` — the single definition of
/// the "user<i>" format shared by the store's load phase
/// (storage/kv_store.cc) and the workload generator (workload/ycsb.cc).
/// Keys are shard-hashed by storage::ShardRouter, so a silent divergence
/// between the two call sites would split the loaded records and the
/// generated accesses across *different* shards; keep exactly one
/// formatter. Header-only (string-only dependency) so the storage layer
/// can include it without depending on the workload library.
inline std::string YcsbKey(uint64_t index) {
  return "user" + std::to_string(index);
}

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_YCSB_KEY_H_
