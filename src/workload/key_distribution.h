#ifndef SBFT_WORKLOAD_KEY_DISTRIBUTION_H_
#define SBFT_WORKLOAD_KEY_DISTRIBUTION_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"

namespace sbft::workload {

/// \brief Key-popularity distribution over a dense index space [0, n).
///
/// Shared by every workload family: the YCSB generator picks record
/// indexes through it, the TPC-C generator picks warehouses, and the
/// serverless-workflow generator picks function-state slots — so the
/// hot-key-skew knob means the same thing everywhere. Implementations
/// draw from the caller's Rng and hold no mutable state, keeping the
/// rng-stream contract (one generator, one deterministic draw sequence)
/// in one place.
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  /// Next key index in [0, n). Draws from `rng`.
  virtual uint64_t NextIndex(Rng* rng) const = 0;

  /// Size of the index space.
  virtual uint64_t n() const = 0;
};

/// Uniform popularity: every index equally likely (one Uniform draw —
/// byte-identical to the historical YCSB uniform path).
class UniformKeys : public KeyDistribution {
 public:
  explicit UniformKeys(uint64_t n) : n_(n) {}
  uint64_t NextIndex(Rng* rng) const override { return rng->Uniform(n_); }
  uint64_t n() const override { return n_; }

 private:
  uint64_t n_;
};

/// Zipfian popularity with parameter theta in (0, 1), Gray et al.'s
/// incremental method (the same sampler YCSB uses; one NextDouble draw
/// per sample — byte-identical to the historical YCSB zipfian path).
/// Rank-frequency follows f(r) ~ r^-theta.
class ZipfianKeys : public KeyDistribution {
 public:
  ZipfianKeys(uint64_t n, double theta);
  uint64_t NextIndex(Rng* rng) const override;
  uint64_t n() const override { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// Builds the distribution for (n, theta): uniform at theta == 0,
/// zipfian otherwise. `zipf_cap` bounds the harmonic-sum precomputation
/// (and with it the skewed head of the keyspace) exactly as the YCSB
/// generator always has; 0 means no cap.
std::unique_ptr<KeyDistribution> MakeKeyDistribution(uint64_t n, double theta,
                                                     uint64_t zipf_cap);

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_KEY_DISTRIBUTION_H_
