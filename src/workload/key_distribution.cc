#include "workload/key_distribution.h"

#include <algorithm>
#include <cmath>

namespace sbft::workload {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianKeys::ZipfianKeys(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianKeys::NextIndex(Rng* rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t idx = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (idx >= n_) idx = n_ - 1;
  return idx;
}

std::unique_ptr<KeyDistribution> MakeKeyDistribution(uint64_t n, double theta,
                                                     uint64_t zipf_cap) {
  if (theta <= 0) return std::make_unique<UniformKeys>(n);
  uint64_t capped = zipf_cap == 0 ? n : std::min(n, zipf_cap);
  return std::make_unique<ZipfianKeys>(capped, theta);
}

}  // namespace sbft::workload
