#ifndef SBFT_WORKLOAD_WORKFLOW_H_
#define SBFT_WORKLOAD_WORKFLOW_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "workload/generator.h"
#include "workload/key_distribution.h"

namespace sbft::workload {

/// Parameters of the serverless-workflow workload: chains of function
/// invocations (Beldi-style), each hop an exactly-once transaction that
/// reads the invoking function's state and writes the next function's
/// state — so a chain is a sequence of dependent cross-function (and,
/// when sharded, cross-shard) transactions.
struct WorkflowConfig {
  /// Distinct functions in the application.
  uint32_t functions = 6;
  /// State slots per function ("wf<fn>_s<slot>" rows).
  uint32_t state_keys_per_function = 200;
  /// Hops per chain (function invocations per workflow).
  uint32_t chain_hops = 3;
  /// Value bytes per state row.
  size_t value_size = 64;
  /// Slot-popularity skew within a function's state (0 = uniform).
  double zipf_theta = 0.0;
  /// Shard planes the keyspace is hash-partitioned over. When > 1 each
  /// hop's write slot is re-rolled onto a different shard than its read
  /// slot, so every hop exercises the cross-shard 2PC path — the
  /// regime where exactly-once per hop is actually at stake.
  uint32_t shard_count = 1;
};

/// \brief Serverless workflow-chain generator.
///
/// `HopTxn` builds the transaction for one function invocation of one
/// chain: read a state slot of function `hop % functions`, write a slot
/// of function `(hop + 1) % functions`. The traffic source drives the
/// chain — hop k+1 is only issued after hop k commits — and retries
/// aborted hops as *fresh* transactions (atomic abort means nothing of
/// the failed attempt is visible), while timeouts retransmit the same
/// signed request so the dedup/decision-log path answers duplicates.
class WorkflowGenerator : public TxnGenerator {
 public:
  WorkflowGenerator(const WorkflowConfig& config, Rng rng);

  /// One fresh chain's first hop (TxnGenerator interface; sources in
  /// chain mode call HopTxn directly).
  Transaction Next(ActorId client) override;
  void LoadInto(storage::KvStore* store) const override;
  void LoadInto(storage::KvStore* store, const storage::ShardRouter& router,
                uint32_t shard) const override;

  /// Transaction for hop `hop` of chain `chain_id` on behalf of
  /// `source`. Each call draws fresh slots and a fresh txn id — calling
  /// it again for the same (chain, hop) builds the retry-after-abort
  /// attempt.
  Transaction HopTxn(ActorId source, uint64_t chain_id, uint32_t hop);

  uint64_t NewChainId() { return next_chain_id_++; }

  static std::string StateKey(uint32_t fn, uint32_t slot);

  const WorkflowConfig& config() const { return config_; }

 private:
  uint32_t NextSlot();

  WorkflowConfig config_;
  Rng rng_;
  TxnId next_txn_id_ = 1;
  uint64_t next_chain_id_ = 1;
  std::unique_ptr<KeyDistribution> slots_;
};

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_WORKFLOW_H_
