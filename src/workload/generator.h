#ifndef SBFT_WORKLOAD_GENERATOR_H_
#define SBFT_WORKLOAD_GENERATOR_H_

#include "common/ids.h"
#include "storage/kv_store.h"
#include "storage/shard_router.h"
#include "workload/transaction.h"

namespace sbft::workload {

/// \brief Interface every workload family implements: YCSB key-value
/// (the paper's evaluation workload), TPC-C-style multi-key
/// read-modify-write, and serverless workflow chains.
///
/// One generator instance serves a whole run — every client or traffic
/// source draws from it in simulation-event order, so transaction ids
/// are unique and the draw sequence is deterministic for a seed.
class TxnGenerator {
 public:
  virtual ~TxnGenerator() = default;

  /// Generates the next transaction on behalf of `client`.
  virtual Transaction Next(ActorId client) = 0;

  /// Loads the workload's records into the store (single-plane runs).
  virtual void LoadInto(storage::KvStore* store) const = 0;

  /// Sharded load phase: loads only the records whose key hashes to
  /// `shard` under `router`.
  virtual void LoadInto(storage::KvStore* store,
                        const storage::ShardRouter& router,
                        uint32_t shard) const = 0;
};

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_GENERATOR_H_
