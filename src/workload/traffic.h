#ifndef SBFT_WORKLOAD_TRAFFIC_H_
#define SBFT_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "workload/tpcc.h"
#include "workload/workflow.h"

namespace sbft::workload {

/// Shape of the arrival process an open-loop source realizes.
enum class ArrivalKind {
  kPoisson = 0,  ///< Homogeneous Poisson at the configured rate.
  kBursty = 1,   ///< On/off square-wave modulated Poisson.
  kDiurnal = 2,  ///< Trace-driven rate multipliers (a scaled day).
};

/// Which transaction family the traffic sources inject.
enum class TrafficFamily {
  kYcsb = 0,      ///< The YCSB key-value workload (paper §IX).
  kTpcc = 1,      ///< TPC-C-style NewOrder multi-key RMW.
  kWorkflow = 2,  ///< Serverless workflow chains (one txn per hop).
};

/// \brief Open-loop traffic configuration.
///
/// Off by default: `open_loop == false` leaves the architecture on the
/// closed-loop Client path (the golden-digest path) with zero change to
/// construction order or rng draws. When on, `sources` TrafficSource
/// actors replace the clients and inject transactions at `offered_tps`
/// aggregate regardless of completion — the open-loop regime where
/// saturation, retry storms, and overload shedding are observable.
struct TrafficConfig {
  bool open_loop = false;

  /// Traffic source actors (regions' worth of injectors). The offered
  /// rate is split evenly across them.
  uint32_t sources = 4;
  /// Aggregate offered load, txn/s, across all sources (the peak rate
  /// for the modulated arrival kinds; bursty/diurnal average below it).
  double offered_tps = 2000.0;

  ArrivalKind arrival = ArrivalKind::kPoisson;
  /// Bursty: peak window length, idle window length, and the idle-rate
  /// fraction of peak (duty-cycle modulation).
  SimDuration burst_on = Millis(100);
  SimDuration burst_off = Millis(400);
  double burst_idle_fraction = 0.1;
  /// Diurnal: rate multipliers per `diurnal_step` slot, wrapping (the
  /// trace; empty means flat 1.0). `offered_tps` is the base rate.
  std::vector<double> diurnal_trace;
  SimDuration diurnal_step = Millis(500);

  TrafficFamily family = TrafficFamily::kYcsb;
  TpccConfig tpcc;
  WorkflowConfig workflow;

  /// Retransmission timer per in-flight transaction (τ_m for sources;
  /// open-loop sources time out much tighter than the patient
  /// closed-loop client).
  SimDuration retry_timeout = Millis(400);
  /// Cap on transactions a source keeps *retrying* concurrently; once
  /// the cap is full, further timeouts drop the transaction (counted in
  /// dropped()) instead of joining the retransmit storm. 0 = drop on
  /// first timeout; the cap is what bounds retry amplification under
  /// overload.
  uint32_t retry_inflight_cap = 64;
  /// Hard cap on total in-flight transactions per source; arrivals
  /// beyond it are shed (offered + dropped). 0 = unbounded.
  uint64_t max_inflight = 0;
  /// Workflow chains: attempts per hop before the chain is dropped
  /// (each attempt after an abort is a fresh transaction).
  uint32_t max_hop_attempts = 16;
};

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_TRAFFIC_H_
