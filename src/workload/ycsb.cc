#include "workload/ycsb.h"

#include <cmath>

#include "storage/shard_router.h"
#include "workload/ycsb_key.h"

namespace sbft::workload {

YcsbGenerator::YcsbGenerator(const YcsbConfig& config, Rng rng)
    : config_(config),
      rng_(rng),
      // The 100k cap bounds the zipfian harmonic-sum precomputation;
      // beyond it the tail weights are negligible and construction stays
      // O(1e5). Uniform sampling covers the full record count.
      keys_(MakeKeyDistribution(config.record_count, config.zipf_theta,
                                100000)) {}

void YcsbGenerator::LoadInto(storage::KvStore* store) const {
  store->LoadYcsbRecords(config_.record_count, config_.value_size);
}

void YcsbGenerator::LoadInto(storage::KvStore* store,
                             const storage::ShardRouter& router,
                             uint32_t shard) const {
  for (uint64_t i = 0; i < config_.record_count; ++i) {
    std::string key = YcsbKey(i);
    if (router.ShardOf(key) != shard) continue;
    Bytes value(config_.value_size, static_cast<uint8_t>('v'));
    store->Put(std::move(key), std::move(value));
  }
}

std::string YcsbGenerator::KeyFor(uint64_t index) { return YcsbKey(index); }

uint64_t YcsbGenerator::NextKeyIndex() { return keys_->NextIndex(&rng_); }

Transaction YcsbGenerator::Next(ActorId client) {
  Transaction txn;
  txn.id = next_txn_id_++;
  txn.client = client;
  txn.rw_sets_known = config_.rw_sets_known;

  bool contended = config_.conflict_percentage > 0 &&
                   rng_.Bernoulli(config_.conflict_percentage / 100.0);

  for (int i = 0; i < config_.ops_per_txn; ++i) {
    Operation op;
    bool is_write = rng_.Bernoulli(config_.write_fraction);
    uint64_t index;
    if (contended) {
      // Contended transactions read and write within the small hot set,
      // guaranteeing read-write conflicts between concurrent transactions.
      index = rng_.Uniform(static_cast<uint64_t>(config_.hot_keys));
    } else {
      index = NextKeyIndex();
    }
    op.key = KeyFor(index);
    if (is_write) {
      op.type = OpType::kWrite;
      op.value.assign(config_.value_size, static_cast<uint8_t>('w'));
    } else {
      op.type = OpType::kRead;
    }
    txn.ops.push_back(std::move(op));
  }
  if (contended) {
    // Ensure at least one write lands on the hot set so the pair
    // (reader, writer) actually conflicts.
    bool has_write = false;
    for (const Operation& op : txn.ops) {
      if (op.type == OpType::kWrite) has_write = true;
    }
    if (!has_write) {
      txn.ops[0].type = OpType::kWrite;
      txn.ops[0].value.assign(config_.value_size, static_cast<uint8_t>('w'));
    }
  }

  // Cross-shard knob: control the spanning fraction in both directions
  // (span when the coin says so, collapse onto one shard otherwise).
  // Guarded so the rng stream is untouched when the knob is off —
  // single-plane runs must replay byte-identically.
  if (config_.cross_shard_percentage > 0 && config_.shard_count > 1 &&
      !contended && txn.ops.size() >= 2) {
    ForceShardSpan(&txn,
                   rng_.Bernoulli(config_.cross_shard_percentage / 100.0));
  }

  if (config_.execution_cost > 0) {
    Operation compute;
    compute.type = OpType::kCompute;
    compute.compute_cost = config_.execution_cost;
    txn.ops.push_back(std::move(compute));
  }
  return txn;
}

void YcsbGenerator::ForceShardSpan(Transaction* txn, bool span) {
  storage::ShardRouter router(config_.shard_count);
  // Anchor shard: wherever the first key op already lives. Every other
  // key op is re-rolled until it lands off the anchor (span) or on it
  // (single-shard); with record_count >> shard_count a handful of draws
  // suffice (bounded for safety — a failed bound only shifts the
  // achieved fraction marginally).
  storage::ShardId anchor = router.ShardOf(txn->ops[0].key);
  if (span) {
    Operation& second = txn->ops[1];
    for (int attempts = 0; attempts < 64; ++attempts) {
      if (router.ShardOf(second.key) != anchor) return;
      second.key = YcsbKey(NextKeyIndex());
    }
    return;
  }
  for (size_t i = 1; i < txn->ops.size(); ++i) {
    Operation& op = txn->ops[i];
    if (op.type == OpType::kCompute) continue;
    for (int attempts = 0; attempts < 64; ++attempts) {
      if (router.ShardOf(op.key) == anchor) break;
      op.key = YcsbKey(NextKeyIndex());
    }
  }
}

}  // namespace sbft::workload
