#include "workload/transaction.h"

#include <unordered_set>

#include "crypto/sha256.h"

namespace sbft::workload {

std::vector<std::string> Transaction::ReadKeys() const {
  std::vector<std::string> keys;
  for (const Operation& op : ops) {
    if (op.type == OpType::kRead) keys.push_back(op.key);
  }
  return keys;
}

std::vector<std::string> Transaction::WriteKeys() const {
  std::vector<std::string> keys;
  for (const Operation& op : ops) {
    if (op.type == OpType::kWrite) keys.push_back(op.key);
  }
  return keys;
}

std::vector<std::string> Transaction::TouchedKeys() const {
  std::vector<std::string> keys;
  for (const Operation& op : ops) {
    if (op.type != OpType::kCompute) keys.push_back(op.key);
  }
  return keys;
}

SimDuration Transaction::ComputeCost() const {
  SimDuration total = 0;
  for (const Operation& op : ops) {
    if (op.type == OpType::kCompute) total += op.compute_cost;
  }
  return total;
}

bool Transaction::Conflicts(const Transaction& a, const Transaction& b) {
  std::unordered_set<std::string> a_writes, a_touched;
  for (const Operation& op : a.ops) {
    if (op.type == OpType::kCompute) continue;
    a_touched.insert(op.key);
    if (op.type == OpType::kWrite) a_writes.insert(op.key);
  }
  for (const Operation& op : b.ops) {
    if (op.type == OpType::kCompute) continue;
    // Shared key where b writes, or where a writes.
    if (op.type == OpType::kWrite && a_touched.contains(op.key)) return true;
    if (a_writes.contains(op.key)) return true;
  }
  return false;
}

// Wire format note: the byte after (id, client) is a *flags* byte, not a
// plain bool. Bit 0 is rw_sets_known; bit 1 marks the presence of the
// cross-shard 2PC fields (global_id, coordinator). Ordinary transactions
// therefore encode byte-identically to the pre-sharding format — the
// invariant the golden scenario digests pin — while fragments append
// their metadata behind the flag.
void Transaction::EncodeTo(Encoder* enc) const {
  uint8_t flags = static_cast<uint8_t>(rw_sets_known ? 1 : 0);
  if (global_id != 0) flags |= 2;
  enc->PutU64(id);
  enc->PutU32(client);
  enc->PutU8(flags);
  if (global_id != 0) {
    enc->PutU64(global_id);
    enc->PutU32(coordinator);
  }
  enc->PutVarint(ops.size());
  for (const Operation& op : ops) {
    enc->PutU8(static_cast<uint8_t>(op.type));
    enc->PutString(op.key);
    enc->PutBytes(op.value);
    enc->PutU64(static_cast<uint64_t>(op.compute_cost));
  }
}

Status Transaction::DecodeFrom(Decoder* dec, Transaction* out) {
  Status st = dec->GetU64(&out->id);
  if (!st.ok()) return st;
  st = dec->GetU32(&out->client);
  if (!st.ok()) return st;
  uint8_t flags;
  st = dec->GetU8(&flags);
  if (!st.ok()) return st;
  if (flags > 3) return Status::Corruption("bad txn flags");
  out->rw_sets_known = (flags & 1) != 0;
  out->global_id = 0;
  out->coordinator = kInvalidActor;
  if ((flags & 2) != 0) {
    st = dec->GetU64(&out->global_id);
    if (!st.ok()) return st;
    st = dec->GetU32(&out->coordinator);
    if (!st.ok()) return st;
  }
  uint64_t n;
  st = dec->GetVarint(&n);
  if (!st.ok()) return st;
  out->ops.clear();
  out->ops.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Operation op;
    uint8_t type;
    st = dec->GetU8(&type);
    if (!st.ok()) return st;
    if (type > 2) return Status::Corruption("bad op type");
    op.type = static_cast<OpType>(type);
    st = dec->GetString(&op.key);
    if (!st.ok()) return st;
    st = dec->GetBytes(&op.value);
    if (!st.ok()) return st;
    uint64_t cost;
    st = dec->GetU64(&cost);
    if (!st.ok()) return st;
    op.compute_cost = static_cast<SimDuration>(cost);
    out->ops.push_back(std::move(op));
  }
  return Status::Ok();
}

size_t Transaction::WireSize() const {
  size_t n = 8 + 4 + 1;  // id, client, flags.
  if (global_id != 0) n += 8 + 4;
  n += VarintLen(ops.size());
  for (const Operation& op : ops) {
    n += 1 + SizedLen(op.key.size()) + SizedLen(op.value.size()) + 8;
  }
  return n;
}

crypto::Digest Transaction::Hash() const {
  ScratchEncoder enc;
  EncodeTo(&enc.enc());
  return crypto::Sha256::Hash(enc->buffer());
}

void TransactionBatch::EncodeTo(Encoder* enc) const {
  enc->PutVarint(txns.size());
  for (const Transaction& t : txns) {
    t.EncodeTo(enc);
  }
}

Status TransactionBatch::DecodeFrom(Decoder* dec, TransactionBatch* out) {
  uint64_t n;
  Status st = dec->GetVarint(&n);
  if (!st.ok()) return st;
  *out = TransactionBatch();  // Reset memoized hash/size with the content.
  out->txns.clear();
  out->txns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Transaction t;
    st = Transaction::DecodeFrom(dec, &t);
    if (!st.ok()) return st;
    out->txns.push_back(std::move(t));
  }
  return Status::Ok();
}

size_t TransactionBatch::WireSize() const {
  if (memo_wire_size_ == kNoMemo) {
    size_t n = VarintLen(txns.size());
    for (const Transaction& t : txns) n += t.WireSize();
    memo_wire_size_ = n;
  }
  return memo_wire_size_;
}

const crypto::Digest& TransactionBatch::Hash() const {
  if (!memo_hash_set_) {
    ScratchEncoder enc;
    EncodeTo(&enc.enc());
    memo_hash_ = crypto::Sha256::Hash(enc->buffer());
    memo_hash_set_ = true;
  }
  return memo_hash_;
}

const BatchPtr& EmptyBatch() {
  static const BatchPtr kEmpty = std::make_shared<const TransactionBatch>();
  return kEmpty;
}

SimDuration TransactionBatch::TotalComputeCost() const {
  SimDuration total = 0;
  for (const Transaction& t : txns) total += t.ComputeCost();
  return total;
}

}  // namespace sbft::workload
