#include "workload/transaction.h"

#include <unordered_set>

#include "crypto/sha256.h"

namespace sbft::workload {

std::vector<std::string> Transaction::ReadKeys() const {
  std::vector<std::string> keys;
  for (const Operation& op : ops) {
    if (op.type == OpType::kRead) keys.push_back(op.key);
  }
  return keys;
}

std::vector<std::string> Transaction::WriteKeys() const {
  std::vector<std::string> keys;
  for (const Operation& op : ops) {
    if (op.type == OpType::kWrite) keys.push_back(op.key);
  }
  return keys;
}

SimDuration Transaction::ComputeCost() const {
  SimDuration total = 0;
  for (const Operation& op : ops) {
    if (op.type == OpType::kCompute) total += op.compute_cost;
  }
  return total;
}

bool Transaction::Conflicts(const Transaction& a, const Transaction& b) {
  std::unordered_set<std::string> a_writes, a_touched;
  for (const Operation& op : a.ops) {
    if (op.type == OpType::kCompute) continue;
    a_touched.insert(op.key);
    if (op.type == OpType::kWrite) a_writes.insert(op.key);
  }
  for (const Operation& op : b.ops) {
    if (op.type == OpType::kCompute) continue;
    // Shared key where b writes, or where a writes.
    if (op.type == OpType::kWrite && a_touched.contains(op.key)) return true;
    if (a_writes.contains(op.key)) return true;
  }
  return false;
}

void Transaction::EncodeTo(Encoder* enc) const {
  enc->PutU64(id);
  enc->PutU32(client);
  enc->PutBool(rw_sets_known);
  enc->PutVarint(ops.size());
  for (const Operation& op : ops) {
    enc->PutU8(static_cast<uint8_t>(op.type));
    enc->PutString(op.key);
    enc->PutBytes(op.value);
    enc->PutU64(static_cast<uint64_t>(op.compute_cost));
  }
}

Status Transaction::DecodeFrom(Decoder* dec, Transaction* out) {
  Status st = dec->GetU64(&out->id);
  if (!st.ok()) return st;
  st = dec->GetU32(&out->client);
  if (!st.ok()) return st;
  st = dec->GetBool(&out->rw_sets_known);
  if (!st.ok()) return st;
  uint64_t n;
  st = dec->GetVarint(&n);
  if (!st.ok()) return st;
  out->ops.clear();
  out->ops.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Operation op;
    uint8_t type;
    st = dec->GetU8(&type);
    if (!st.ok()) return st;
    if (type > 2) return Status::Corruption("bad op type");
    op.type = static_cast<OpType>(type);
    st = dec->GetString(&op.key);
    if (!st.ok()) return st;
    st = dec->GetBytes(&op.value);
    if (!st.ok()) return st;
    uint64_t cost;
    st = dec->GetU64(&cost);
    if (!st.ok()) return st;
    op.compute_cost = static_cast<SimDuration>(cost);
    out->ops.push_back(std::move(op));
  }
  return Status::Ok();
}

size_t Transaction::WireSize() const {
  ScratchEncoder enc;
  EncodeTo(&enc.enc());
  return enc->size();
}

crypto::Digest Transaction::Hash() const {
  ScratchEncoder enc;
  EncodeTo(&enc.enc());
  return crypto::Sha256::Hash(enc->buffer());
}

void TransactionBatch::EncodeTo(Encoder* enc) const {
  enc->PutVarint(txns.size());
  for (const Transaction& t : txns) {
    t.EncodeTo(enc);
  }
}

Status TransactionBatch::DecodeFrom(Decoder* dec, TransactionBatch* out) {
  uint64_t n;
  Status st = dec->GetVarint(&n);
  if (!st.ok()) return st;
  out->txns.clear();
  out->txns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Transaction t;
    st = Transaction::DecodeFrom(dec, &t);
    if (!st.ok()) return st;
    out->txns.push_back(std::move(t));
  }
  return Status::Ok();
}

size_t TransactionBatch::WireSize() const {
  ScratchEncoder enc;
  EncodeTo(&enc.enc());
  return enc->size();
}

crypto::Digest TransactionBatch::Hash() const {
  ScratchEncoder enc;
  EncodeTo(&enc.enc());
  return crypto::Sha256::Hash(enc->buffer());
}

SimDuration TransactionBatch::TotalComputeCost() const {
  SimDuration total = 0;
  for (const Transaction& t : txns) total += t.ComputeCost();
  return total;
}

}  // namespace sbft::workload
