#ifndef SBFT_WORKLOAD_TRANSACTION_H_
#define SBFT_WORKLOAD_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "crypto/digest.h"

namespace sbft::workload {

/// Kinds of operation inside a transaction.
enum class OpType : uint8_t {
  kRead = 0,   ///< Read a key from the on-premise store.
  kWrite = 1,  ///< Write a key (buffered; applied by the verifier).
  kCompute = 2 ///< Pure computation (the expensive-execution knob, Q4).
};

/// One operation of a transaction.
struct Operation {
  OpType type = OpType::kRead;
  std::string key;            ///< For kRead / kWrite.
  Bytes value;                ///< For kWrite.
  SimDuration compute_cost = 0;  ///< For kCompute.

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.type == b.type && a.key == b.key && a.value == b.value &&
           a.compute_cost == b.compute_cost;
  }
};

/// \brief A client transaction T (paper §IV-A).
///
/// Clients sign and submit transactions to the shim; executors run the
/// operations against data fetched from storage. When `rw_sets_known` the
/// shim can see the key sets before execution and apply the §VI-C
/// best-effort conflict avoidance.
struct Transaction {
  TxnId id = 0;
  ActorId client = kInvalidActor;
  std::vector<Operation> ops;
  bool rw_sets_known = true;

  // --- cross-shard 2PC metadata (sharded data plane) ---
  /// Non-zero marks this transaction as one shard-local *fragment* of a
  /// cross-shard transaction with this global id. The shard verifier then
  /// runs the prepare/vote protocol for it instead of applying directly.
  TxnId global_id = 0;
  /// Coordinator actor the shard verifier votes to (fragments only).
  ActorId coordinator = kInvalidActor;

  /// True when this transaction is a 2PC fragment of a cross-shard
  /// transaction (coordinated commit instead of direct apply).
  bool IsFragment() const { return global_id != 0; }

  /// Keys read / written (declared sets; exact for this workload).
  std::vector<std::string> ReadKeys() const;
  std::vector<std::string> WriteKeys() const;
  /// All keys touched (reads + writes, in op order, duplicates kept) —
  /// what the shard router partitions on.
  std::vector<std::string> TouchedKeys() const;

  /// Total compute cost across kCompute operations.
  SimDuration ComputeCost() const;

  /// True when two transactions access a common key and at least one
  /// writes it (paper §VI definition).
  static bool Conflicts(const Transaction& a, const Transaction& b);

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, Transaction* out);
  size_t WireSize() const;
  crypto::Digest Hash() const;
};

/// \brief An ordered batch of transactions — the unit of consensus
/// (paper §IX setup: "consensuses on batches of 100 client transactions").
///
/// Hash() and WireSize() are memoized: a batch is hashed by the proposer,
/// every replica, and every executor, and the bytes never change once the
/// batch is proposed. Copying resets the memo, so the one mutate-a-copy
/// path (equivocation injection) re-hashes correctly. Mutating `txns` on
/// an already-hashed batch in place is not supported — copy first.
struct TransactionBatch {
  std::vector<Transaction> txns;

  TransactionBatch() = default;
  TransactionBatch(const TransactionBatch& o) : txns(o.txns) {}
  TransactionBatch(TransactionBatch&& o) noexcept = default;
  TransactionBatch& operator=(const TransactionBatch& o) {
    txns = o.txns;
    memo_wire_size_ = kNoMemo;
    memo_hash_set_ = false;
    return *this;
  }
  TransactionBatch& operator=(TransactionBatch&& o) noexcept = default;

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, TransactionBatch* out);
  size_t WireSize() const;
  const crypto::Digest& Hash() const;

  SimDuration TotalComputeCost() const;
  bool empty() const { return txns.empty(); }
  size_t size() const { return txns.size(); }

 private:
  static constexpr size_t kNoMemo = static_cast<size_t>(-1);
  mutable size_t memo_wire_size_ = kNoMemo;
  mutable crypto::Digest memo_hash_{};
  mutable bool memo_hash_set_ = false;
};

/// Shared immutable batch. Consensus messages and replica slots hold the
/// proposed batch through this pointer so relaying a PREPREPARE, stashing
/// a slot, or spawning an executor copies 8 bytes instead of the batch.
using BatchPtr = std::shared_ptr<const TransactionBatch>;

/// The canonical empty batch (null-object for default-constructed
/// messages and gap-fill proposals).
const BatchPtr& EmptyBatch();

/// Wraps a batch for sharing; moves out of `b`.
inline BatchPtr ShareBatch(TransactionBatch&& b) {
  return std::make_shared<const TransactionBatch>(std::move(b));
}

}  // namespace sbft::workload

#endif  // SBFT_WORKLOAD_TRANSACTION_H_
