#include "workload/workflow.h"

#include <algorithm>

#include "storage/shard_router.h"

namespace sbft::workload {

WorkflowGenerator::WorkflowGenerator(const WorkflowConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  config_.functions = std::max<uint32_t>(config_.functions, 1);
  config_.state_keys_per_function =
      std::max<uint32_t>(config_.state_keys_per_function, 1);
  slots_ = MakeKeyDistribution(config_.state_keys_per_function,
                               config_.zipf_theta, 0);
}

std::string WorkflowGenerator::StateKey(uint32_t fn, uint32_t slot) {
  return "wf" + std::to_string(fn) + "_s" + std::to_string(slot);
}

uint32_t WorkflowGenerator::NextSlot() {
  return static_cast<uint32_t>(slots_->NextIndex(&rng_));
}

void WorkflowGenerator::LoadInto(storage::KvStore* store) const {
  for (uint32_t fn = 0; fn < config_.functions; ++fn) {
    for (uint32_t s = 0; s < config_.state_keys_per_function; ++s) {
      Bytes value(config_.value_size, static_cast<uint8_t>('f'));
      store->Put(StateKey(fn, s), std::move(value));
    }
  }
}

void WorkflowGenerator::LoadInto(storage::KvStore* store,
                                 const storage::ShardRouter& router,
                                 uint32_t shard) const {
  for (uint32_t fn = 0; fn < config_.functions; ++fn) {
    for (uint32_t s = 0; s < config_.state_keys_per_function; ++s) {
      std::string key = StateKey(fn, s);
      if (router.ShardOf(key) != shard) continue;
      Bytes value(config_.value_size, static_cast<uint8_t>('f'));
      store->Put(std::move(key), std::move(value));
    }
  }
}

Transaction WorkflowGenerator::HopTxn(ActorId source, uint64_t chain_id,
                                      uint32_t hop) {
  Transaction txn;
  txn.id = next_txn_id_++;
  txn.client = source;
  txn.rw_sets_known = true;

  uint32_t from_fn = hop % config_.functions;
  uint32_t to_fn = (hop + 1) % config_.functions;
  // The chain id seeds the read slot so different chains through the
  // same functions touch different state rows (plus skew from slots_).
  uint32_t read_slot = static_cast<uint32_t>(
      (chain_id + NextSlot()) % config_.state_keys_per_function);

  Operation read;
  read.type = OpType::kRead;
  read.key = StateKey(from_fn, read_slot);
  txn.ops.push_back(read);

  Operation write;
  write.type = OpType::kWrite;
  write.key = StateKey(to_fn, NextSlot());
  write.value.assign(config_.value_size, static_cast<uint8_t>('h'));
  if (config_.shard_count > 1) {
    // Every hop spans shards: re-roll the write slot until it lands off
    // the read key's shard (bounded; a failed bound just yields a
    // single-shard hop, which is still a correct chain step).
    storage::ShardRouter router(config_.shard_count);
    storage::ShardId anchor = router.ShardOf(read.key);
    for (int attempts = 0;
         attempts < 64 && router.ShardOf(write.key) == anchor; ++attempts) {
      write.key = StateKey(to_fn, NextSlot());
    }
  }
  txn.ops.push_back(std::move(write));
  return txn;
}

Transaction WorkflowGenerator::Next(ActorId client) {
  return HopTxn(client, NewChainId(), 0);
}

}  // namespace sbft::workload
