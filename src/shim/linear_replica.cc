#include "shim/linear_replica.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace sbft::shim {

LinearBftReplica::LinearBftReplica(ActorId id, uint32_t index,
                                   const ShimConfig& config,
                                   std::vector<ActorId> peers,
                                   crypto::KeyRegistry* keys,
                                   sim::Simulator* sim, sim::Network* net,
                                   ByzantineBehavior behavior)
    : Actor(id, "linear-" + std::to_string(index)),
      config_(config),
      index_(index),
      peers_(std::move(peers)),
      keys_(keys),
      sim_(sim),
      net_(net),
      behavior_(behavior) {
  assert(peers_[index_] == id);
}

ActorId LinearBftReplica::PrimaryOf(ViewNum view) const {
  return peers_[view % peers_.size()];
}

bool LinearBftReplica::IsPrimary() const { return PrimaryOf(view_) == id(); }

void LinearBftReplica::BroadcastToPeers(const MessagePtr& msg) {
  net_->Broadcast(id(), peers_, id(), msg, msg->WireSize());
}

void LinearBftReplica::OnMessage(const sim::Envelope& env) {
  if (Crashed()) return;
  const auto* base = static_cast<const Message*>(env.message.get());
  if (base == nullptr) return;
  switch (base->kind) {
    case MsgKind::kClientRequest:
      HandleClientRequest(env);
      break;
    case MsgKind::kPrePrepare:
      HandlePrePrepare(env);
      break;
    case MsgKind::kLinearVote:
      HandleVote(env);
      break;
    case MsgKind::kLinearCert:
      HandleCert(env);
      break;
    case MsgKind::kReplace:
      HandleReplace(env);
      break;
    case MsgKind::kError:
      HandleError(env);
      break;
    case MsgKind::kAck:
      HandleAck(env);
      break;
    case MsgKind::kViewChange:
      HandleViewChange(env);
      break;
    case MsgKind::kNewView:
      HandleNewView(env);
      break;
    case MsgKind::kResponse: {
      const auto* msg = MessageAs<ResponseMsg>(env, MsgKind::kResponse);
      if (msg != nullptr && response_observer_) response_observer_(*msg);
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Batching (same policy as PbftReplica).
// ---------------------------------------------------------------------------

void LinearBftReplica::HandleClientRequest(const sim::Envelope& env) {
  const auto* msg = MessageAs<ClientRequestMsg>(env, MsgKind::kClientRequest);
  if (msg == nullptr) return;
  if (!keys_->Verify(msg->txn.client,
                     ClientRequestMsg::SigningBytes(msg->txn),
                     msg->client_sig)) {
    return;
  }
  if (!IsPrimary()) {
    net_->Send(id(), PrimaryOf(view_), env.message, msg->WireSize());
    return;
  }
  if (behavior_.byzantine && behavior_.suppress_requests) return;
  SubmitTransaction(msg->txn);
}

void LinearBftReplica::SubmitTransaction(const workload::Transaction& txn) {
  if (seen_txns_.contains(txn.id)) return;
  seen_txns_.insert(txn.id);
  pending_.push_back(txn);
  MaybeProposeBatch();
}

void LinearBftReplica::ScheduleBatchFlush() {
  if (batch_flush_timer_ != 0 || pending_.empty()) return;
  batch_flush_timer_ = sim_->Schedule(config_.batch_timeout, [this]() {
    batch_flush_timer_ = 0;
    if (Crashed() || !IsPrimary() || in_view_change_ || pending_.empty()) {
      return;
    }
    size_t take = std::min(pending_.size(), config_.batch_size);
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    ProposeBatch(std::move(batch));
    MaybeProposeBatch();
  });
}

void LinearBftReplica::MaybeProposeBatch() {
  if (Crashed() || !IsPrimary() || in_view_change_) return;
  size_t inflight = 0;
  for (const auto& [seq, slot] : slots_) {
    if (!slot.committed) ++inflight;
  }
  while (pending_.size() >= config_.batch_size &&
         inflight < config_.pipeline_width) {
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + config_.batch_size);
    pending_.erase(pending_.begin(), pending_.begin() + config_.batch_size);
    ProposeBatch(std::move(batch));
    ++inflight;
  }
  ScheduleBatchFlush();
}

void LinearBftReplica::ProposeBatch(workload::TransactionBatch batch) {
  SeqNum seq = next_seq_++;
  auto msg = std::make_shared<PrePrepareMsg>(id());
  msg->view = view_;
  msg->seq = seq;
  msg->batch = workload::ShareBatch(std::move(batch));
  msg->digest = msg->batch->Hash();

  Slot& slot = GetSlot(seq);
  slot.view = view_;
  slot.digest = msg->digest;
  slot.batch = msg->batch;
  slot.have_preprepare = true;
  // The primary's own prepare vote.
  slot.prepare_votes[id()] = keys_->Sign(
      id(), LinearVoteMsg::PrepareSigningBytes(view_, seq, msg->digest));

  BroadcastToPeers(msg);
  StartRequestTimer(seq);
}

// ---------------------------------------------------------------------------
// Linear consensus.
// ---------------------------------------------------------------------------

void LinearBftReplica::HandlePrePrepare(const sim::Envelope& env) {
  const auto* msg = MessageAs<PrePrepareMsg>(env, MsgKind::kPrePrepare);
  if (msg == nullptr) return;
  if (msg->view != view_ || in_view_change_) return;
  if (env.from != PrimaryOf(view_)) return;
  if (msg->batch->Hash() != msg->digest) return;

  Slot& slot = GetSlot(msg->seq);
  if (slot.committed || slot.have_preprepare) return;
  slot.view = msg->view;
  slot.digest = msg->digest;
  slot.batch = msg->batch;
  slot.have_preprepare = true;
  StartRequestTimer(msg->seq);
  SendVote(msg->seq, LinearPhase::kPrepare);
}

void LinearBftReplica::SendVote(SeqNum seq, LinearPhase phase) {
  Slot& slot = GetSlot(seq);
  auto vote = std::make_shared<LinearVoteMsg>(id());
  vote->phase = phase;
  vote->view = slot.view;
  vote->seq = seq;
  vote->digest = slot.digest;
  if (phase == LinearPhase::kPrepare) {
    vote->ds = keys_->Sign(
        id(), LinearVoteMsg::PrepareSigningBytes(slot.view, seq, slot.digest));
  } else {
    vote->ds = keys_->Sign(
        id(), crypto::CommitSigningBytes(slot.view, seq, slot.digest));
  }
  net_->Send(id(), PrimaryOf(slot.view), vote, vote->WireSize());
}

void LinearBftReplica::HandleVote(const sim::Envelope& env) {
  const auto* msg = MessageAs<LinearVoteMsg>(env, MsgKind::kLinearVote);
  if (msg == nullptr) return;
  if (!IsPrimary() || msg->view != view_) return;
  Slot& slot = GetSlot(msg->seq);
  if (!slot.have_preprepare || slot.digest != msg->digest) return;

  const Bytes signing =
      msg->phase == LinearPhase::kPrepare
          ? LinearVoteMsg::PrepareSigningBytes(msg->view, msg->seq,
                                               msg->digest)
          : crypto::CommitSigningBytes(msg->view, msg->seq, msg->digest);
  if (!keys_->Verify(env.from, signing, msg->ds)) return;

  auto& votes = msg->phase == LinearPhase::kPrepare ? slot.prepare_votes
                                                    : slot.commit_votes;
  votes[env.from] = msg->ds;
  if (votes.size() < config_.quorum()) return;

  if (msg->phase == LinearPhase::kPrepare && !slot.prepare_cert_sent) {
    slot.prepare_cert_sent = true;
    slot.prepared = true;
    auto cert_msg = std::make_shared<LinearCertMsg>(id());
    cert_msg->phase = LinearPhase::kPrepare;
    cert_msg->cert.view = slot.view;
    cert_msg->cert.seq = msg->seq;
    cert_msg->cert.digest = slot.digest;
    for (const auto& [signer, sig] : slot.prepare_votes) {
      if (cert_msg->cert.signatures.size() >= config_.quorum()) break;
      cert_msg->cert.signatures.push_back({signer, sig});
    }
    BroadcastToPeers(cert_msg);
    // The primary's own commit vote (quorum >= 3 for any valid shim, so
    // this never completes the commit quorum by itself).
    slot.commit_votes[id()] = keys_->Sign(
        id(), crypto::CommitSigningBytes(slot.view, msg->seq, slot.digest));
    return;
  }
  if (msg->phase == LinearPhase::kCommit && !slot.committed) {
    slot.committed = true;
    slot.cert.view = slot.view;
    slot.cert.seq = msg->seq;
    slot.cert.digest = slot.digest;
    for (const auto& [signer, sig] : slot.commit_votes) {
      if (slot.cert.signatures.size() >= config_.quorum()) break;
      slot.cert.signatures.push_back({signer, sig});
    }
    auto cert_msg = std::make_shared<LinearCertMsg>(id());
    cert_msg->phase = LinearPhase::kCommit;
    cert_msg->cert = slot.cert;
    BroadcastToPeers(cert_msg);
    OnCommitted(msg->seq);
  }
}

void LinearBftReplica::HandleCert(const sim::Envelope& env) {
  const auto* msg = MessageAs<LinearCertMsg>(env, MsgKind::kLinearCert);
  if (msg == nullptr) return;
  Slot& slot = GetSlot(msg->cert.seq);
  if (slot.committed) return;
  if (!slot.have_preprepare || slot.digest != msg->cert.digest) return;

  if (msg->phase == LinearPhase::kPrepare) {
    // Validate the 2f+1 prepare signatures against the prepare domain.
    Bytes signing = LinearVoteMsg::PrepareSigningBytes(
        msg->cert.view, msg->cert.seq, msg->cert.digest);
    size_t valid = 0;
    for (const crypto::Signature& sig : msg->cert.signatures) {
      if (keys_->Verify(sig.signer, signing, sig.sig)) ++valid;
    }
    if (valid < config_.quorum()) return;
    if (!slot.prepared) {
      slot.prepared = true;
      SendVote(msg->cert.seq, LinearPhase::kCommit);
    }
    return;
  }
  // Commit certificate: standard C — full validation.
  if (!msg->cert.Validate(*keys_, config_.quorum()).ok()) return;
  slot.committed = true;
  slot.cert = msg->cert;
  OnCommitted(msg->cert.seq);
}

void LinearBftReplica::OnCommitted(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  if (slot.request_timer != 0) {
    sim_->Cancel(slot.request_timer);
    slot.request_timer = 0;
  }
  // Resolve missing-request Υ timers for the committed transactions
  // (see PbftReplica::OnCommitted) — covers lost verifier ACKs.
  if (!retransmit_timers_.empty()) {
    for (const workload::Transaction& txn : slot.batch->txns) {
      crypto::Digest digest = txn.Hash();
      uint64_t key =
          Fnv1a64(digest.data(), crypto::Digest::kSize) & ~(1ull << 63);
      auto it = retransmit_timers_.find(key);
      if (it != retransmit_timers_.end()) {
        sim_->Cancel(it->second);
        retransmit_timers_.erase(it);
      }
    }
  }
  ++committed_batches_;
  committed_txns_ += slot.batch->txns.size();
  if (commit_cb_) {
    commit_cb_(seq, slot.view, slot.batch, slot.cert);
  }
  if (IsPrimary()) MaybeProposeBatch();
}

bool LinearBftReplica::HasCommitted(SeqNum seq) const {
  auto it = slots_.find(seq);
  return it != slots_.end() && it->second.committed;
}

// ---------------------------------------------------------------------------
// Fault handling: timers + coordinated view change.
// ---------------------------------------------------------------------------

void LinearBftReplica::StartRequestTimer(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  if (slot.request_timer != 0) return;
  slot.request_timer = sim_->Schedule(config_.request_timeout, [this, seq]() {
    Slot& s = GetSlot(seq);
    s.request_timer = 0;
    if (s.committed) return;
    StartViewChange(view_ + 1);
  });
}

void LinearBftReplica::HandleReplace(const sim::Envelope& env) {
  if (MessageAs<ReplaceMsg>(env, MsgKind::kReplace) == nullptr) return;
  StartViewChange(view_ + 1);
}

void LinearBftReplica::HandleError(const sim::Envelope& env) {
  const auto* msg = MessageAs<ErrorMsg>(env, MsgKind::kError);
  if (msg == nullptr) return;
  bool has_seq = msg->reason == ErrorMsg::Reason::kGap;
  uint64_t key = has_seq
                     ? (msg->kmax | (1ull << 63))
                     : (Fnv1a64(msg->txn_digest.data(), crypto::Digest::kSize) &
                        ~(1ull << 63));
  if (!IsPrimary()) {
    // Forward to the primary and arm Υ (Fig. 4 node role).
    net_->Send(id(), PrimaryOf(view_), env.message, msg->WireSize());
    if (!retransmit_timers_.contains(key)) {
      retransmit_timers_[key] =
          sim_->Schedule(config_.retransmit_timeout, [this, key]() {
            retransmit_timers_.erase(key);
            StartViewChange(view_ + 1);
          });
    }
    return;
  }
  if (has_seq) {
    if (HasCommitted(msg->kmax) && respawn_cb_) respawn_cb_(msg->kmax);
  } else if (msg->has_txn &&
             !(behavior_.byzantine && behavior_.suppress_requests)) {
    SubmitTransaction(msg->txn);
  }
}

void LinearBftReplica::HandleAck(const sim::Envelope& env) {
  const auto* msg = MessageAs<AckMsg>(env, MsgKind::kAck);
  if (msg == nullptr) return;
  uint64_t key = msg->has_seq
                     ? (msg->kmax | (1ull << 63))
                     : (Fnv1a64(msg->txn_digest.data(), crypto::Digest::kSize) &
                        ~(1ull << 63));
  auto it = retransmit_timers_.find(key);
  if (it != retransmit_timers_.end()) {
    sim_->Cancel(it->second);
    retransmit_timers_.erase(it);
  }
}

void LinearBftReplica::StartViewChange(ViewNum target) {
  if (Crashed()) return;  // A crashed node's timers take no action.
  if (target <= view_) return;
  if (in_view_change_ && target <= target_view_) return;
  in_view_change_ = true;
  target_view_ = target;

  auto msg = std::make_shared<ViewChangeMsg>(id());
  msg->new_view = target;
  for (const auto& [seq, slot] : slots_) {
    if (slot.prepared || slot.committed) {
      PreparedProof proof;
      proof.view = slot.view;
      proof.seq = seq;
      proof.digest = slot.digest;
      proof.batch = slot.batch;
      msg->prepared.push_back(std::move(proof));
    }
  }
  msg->ds = keys_->Sign(id(), ViewChangeMsg::SigningBytes(target, 0));
  view_change_msgs_[target][id()] = msg->prepared;
  BroadcastToPeers(msg);
  MaybeCompleteViewChange(target);
}

void LinearBftReplica::HandleViewChange(const sim::Envelope& env) {
  const auto* msg = MessageAs<ViewChangeMsg>(env, MsgKind::kViewChange);
  if (msg == nullptr || msg->new_view <= view_) return;
  if (!keys_->Verify(env.from,
                     ViewChangeMsg::SigningBytes(msg->new_view, 0),
                     msg->ds)) {
    return;
  }
  view_change_msgs_[msg->new_view][env.from] = msg->prepared;
  if ((!in_view_change_ || target_view_ < msg->new_view) &&
      view_change_msgs_[msg->new_view].size() >= config_.f() + 1) {
    StartViewChange(msg->new_view);
  }
  MaybeCompleteViewChange(msg->new_view);
}

void LinearBftReplica::MaybeCompleteViewChange(ViewNum target) {
  if (PrimaryOf(target) != id() || view_ >= target) return;
  auto it = view_change_msgs_.find(target);
  if (it == view_change_msgs_.end() || it->second.size() < config_.quorum()) {
    return;
  }
  // Re-propose the most-reported digest per sequence.
  struct Candidate {
    size_t votes = 0;
    PreparedProof proof;
  };
  std::map<SeqNum, std::map<std::string, Candidate>> per_seq;
  for (const auto& [sender, proofs] : it->second) {
    for (const PreparedProof& p : proofs) {
      Candidate& c = per_seq[p.seq][p.digest.ToHex()];
      ++c.votes;
      c.proof = p;
    }
  }
  auto nv = std::make_shared<NewViewMsg>(id());
  nv->view = target;
  SeqNum max_seq = 0;
  for (auto& [seq, candidates] : per_seq) {
    const Candidate* best = nullptr;
    for (auto& [hex, c] : candidates) {
      if (best == nullptr || c.votes > best->votes) best = &c;
    }
    PreparedProof proof = best->proof;
    proof.view = target;
    nv->reproposals.push_back(std::move(proof));
    max_seq = std::max(max_seq, seq);
  }
  nv->ds =
      keys_->Sign(id(), NewViewMsg::SigningBytes(target, nv->reproposals.size()));
  BroadcastToPeers(nv);
  EnterView(target);
  next_seq_ = std::max(next_seq_, max_seq + 1);
  for (const PreparedProof& p : nv->reproposals) {
    Slot& slot = GetSlot(p.seq);
    if (slot.committed) continue;
    slot.view = target;
    slot.digest = p.digest;
    slot.batch = p.batch;
    slot.have_preprepare = true;
    slot.prepared = false;
    slot.prepare_cert_sent = false;
    slot.prepare_votes.clear();
    slot.commit_votes.clear();
    slot.prepare_votes[id()] = keys_->Sign(
        id(), LinearVoteMsg::PrepareSigningBytes(target, p.seq, p.digest));
    auto pp = std::make_shared<PrePrepareMsg>(id());
    pp->view = target;
    pp->seq = p.seq;
    pp->batch = p.batch;
    pp->digest = p.digest;
    BroadcastToPeers(pp);
    StartRequestTimer(p.seq);
  }
  MaybeProposeBatch();
}

void LinearBftReplica::HandleNewView(const sim::Envelope& env) {
  const auto* msg = MessageAs<NewViewMsg>(env, MsgKind::kNewView);
  if (msg == nullptr || msg->view <= view_) return;
  if (env.from != PrimaryOf(msg->view)) return;
  if (!keys_->Verify(env.from,
                     NewViewMsg::SigningBytes(msg->view, msg->reproposals.size()),
                     msg->ds)) {
    return;
  }
  EnterView(msg->view);
  for (const PreparedProof& p : msg->reproposals) {
    Slot& slot = GetSlot(p.seq);
    if (slot.committed || p.batch->Hash() != p.digest) continue;
    slot.view = msg->view;
    slot.digest = p.digest;
    slot.batch = p.batch;
    slot.have_preprepare = true;
    slot.prepared = false;
    StartRequestTimer(p.seq);
    SendVote(p.seq, LinearPhase::kPrepare);
  }
}

void LinearBftReplica::EnterView(ViewNum view) {
  if (view <= view_) return;
  view_ = view;
  in_view_change_ = false;
  ++view_changes_completed_;
  std::erase_if(view_change_msgs_,
                [view](const auto& kv) { return kv.first <= view; });
  // Cancel Υ timers aimed at the old primary (see PbftReplica::EnterView).
  for (auto& [key, timer] : retransmit_timers_) {
    sim_->Cancel(timer);
  }
  retransmit_timers_.clear();
  ForwardPendingToPrimary();
}

void LinearBftReplica::ForwardPendingToPrimary() {
  // Liveness under view-change churn: transactions queued while a view
  // change was in flight are handed to the new primary via the verifier's
  // ERROR-with-txn message (same fix as PbftReplica — see the note
  // there).
  if (IsPrimary() || pending_.empty()) return;
  for (const workload::Transaction& txn : pending_) {
    auto error = std::make_shared<ErrorMsg>(id());
    error->reason = ErrorMsg::Reason::kMissingRequest;
    error->txn_digest = txn.Hash();
    error->has_txn = true;
    error->txn = txn;
    net_->Send(id(), PrimaryOf(view_), error, error->WireSize());
    // Forget the txn so a lost forward can be re-accepted later (see
    // PbftReplica::ForwardPendingToPrimary).
    seen_txns_.erase(txn.id);
  }
  pending_.clear();
}

}  // namespace sbft::shim
