#ifndef SBFT_SHIM_PAXOS_REPLICA_H_
#define SBFT_SHIM_PAXOS_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "shim/message.h"
#include "shim/shim_config.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sbft::shim {

/// \brief SERVERLESSCFT baseline (paper §IX-H): the shim runs a
/// crash-fault-tolerant consensus (leader-stable multi-Paxos, phase 2
/// steady state) instead of PBFT.
///
/// No cryptographic signatures are computed or carried — that is exactly
/// the cost advantage the paper attributes to the CFT baseline — and the
/// quorum is a simple majority instead of 2f+1 of 3f+1.
class MultiPaxosReplica : public sim::Actor {
 public:
  using CommitCallback = std::function<void(
      SeqNum seq, ViewNum view, const workload::TransactionBatch& batch,
      const crypto::CommitCertificate& cert)>;

  MultiPaxosReplica(ActorId id, uint32_t index, const ShimConfig& config,
                    std::vector<ActorId> peers, sim::Simulator* sim,
                    sim::Network* net);

  void OnMessage(const sim::Envelope& env) override;

  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }

  /// Node 0 is the stable leader.
  bool IsLeader() const { return index_ == 0; }

  void SubmitTransaction(const workload::Transaction& txn);

  uint64_t committed_batches() const { return committed_batches_; }
  uint64_t committed_txns() const { return committed_txns_; }

 private:
  struct Slot {
    workload::TransactionBatch batch;
    crypto::Digest digest;
    std::set<ActorId> accepted;
    bool committed = false;
  };

  void HandleClientRequest(const sim::Envelope& env);
  void HandleAccept(const sim::Envelope& env);
  void HandleAccepted(const sim::Envelope& env);
  void MaybeProposeBatch();
  void ProposeBatch(workload::TransactionBatch batch);
  void ScheduleBatchFlush();

  size_t Majority() const { return peers_.size() / 2 + 1; }

  ShimConfig config_;
  uint32_t index_;
  std::vector<ActorId> peers_;
  sim::Simulator* sim_;
  sim::Network* net_;

  uint64_t ballot_ = 1;  // Stable leadership: ballot never changes.
  SeqNum next_slot_ = 1;
  std::map<SeqNum, Slot> slots_;
  std::deque<workload::Transaction> pending_;
  std::unordered_set<TxnId> seen_txns_;
  sim::EventId batch_flush_timer_ = 0;

  CommitCallback commit_cb_;
  uint64_t committed_batches_ = 0;
  uint64_t committed_txns_ = 0;
};

/// \brief NOSHIM baseline (paper §IX-H): no consensus at all — one
/// coordinator node receives client requests and immediately hands the
/// batch to the spawner, approximating the Baresi et al. architecture the
/// paper compares against.
class NoShimCoordinator : public sim::Actor {
 public:
  using CommitCallback = MultiPaxosReplica::CommitCallback;

  NoShimCoordinator(ActorId id, const ShimConfig& config, sim::Simulator* sim,
                    sim::Network* net);

  void OnMessage(const sim::Envelope& env) override;
  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }
  void SubmitTransaction(const workload::Transaction& txn);

  uint64_t committed_batches() const { return committed_batches_; }
  uint64_t committed_txns() const { return committed_txns_; }

 private:
  void MaybeFlush();
  void ScheduleBatchFlush();
  void Emit(workload::TransactionBatch batch);

  ShimConfig config_;
  sim::Simulator* sim_;
  sim::Network* net_;
  SeqNum next_seq_ = 1;
  std::deque<workload::Transaction> pending_;
  sim::EventId batch_flush_timer_ = 0;
  CommitCallback commit_cb_;
  uint64_t committed_batches_ = 0;
  uint64_t committed_txns_ = 0;
};

}  // namespace sbft::shim

#endif  // SBFT_SHIM_PAXOS_REPLICA_H_
