#ifndef SBFT_SHIM_PAXOS_REPLICA_H_
#define SBFT_SHIM_PAXOS_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "shim/message.h"
#include "shim/shim_config.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sbft::shim {

/// \brief SERVERLESSCFT baseline (paper §IX-H): the shim runs a
/// crash-fault-tolerant consensus (leader-stable multi-Paxos, phase 2
/// steady state) instead of PBFT.
///
/// No cryptographic signatures are computed or carried — that is exactly
/// the cost advantage the paper attributes to the CFT baseline — and the
/// quorum is a simple majority instead of 2f+1 of 3f+1.
///
/// Leader failover (fault-engine coverage): the leader of view v is node
/// v % n. Followers watch for leader activity; when the leader goes
/// silent while work is outstanding they bump the view after
/// `view_change_timeout`. The new leader runs a real phase-1 majority
/// read: it broadcasts Prepare(ballot) and waits for promises from a
/// majority (itself included), each carrying the acceptor's
/// highest-ballot accepted suffix. The merged highest-ballot value per
/// slot is re-proposed under the new ballot; slots no promise witnessed
/// are plugged with empty no-op batches so the verifier's k_max cursor
/// can keep moving. Transactions lost with the old leader come back
/// through the verifier's ERROR(missing request) path (Fig. 4), which
/// the leader re-proposes. The majority read is what makes recovery
/// safe when the candidate itself missed accepts (e.g. it was the one
/// partitioned away): any committed value lives on some member of every
/// majority, so the merge cannot orphan a committed slot.
class MultiPaxosReplica : public sim::Actor {
 public:
  using CommitCallback = std::function<void(
      SeqNum seq, ViewNum view, const workload::BatchPtr& batch,
      const crypto::CommitCertificate& cert)>;

  MultiPaxosReplica(ActorId id, uint32_t index, const ShimConfig& config,
                    std::vector<ActorId> peers, sim::Simulator* sim,
                    sim::Network* net);

  void OnMessage(const sim::Envelope& env) override;

  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }

  /// The leader of view v is node v % n.
  bool IsLeader() const { return index_ == view_ % peers_.size(); }
  ViewNum view() const { return view_; }
  uint64_t view_changes() const { return view_changes_; }

  /// Crash-stop / recover hook (fault engine). A crashed replica drops
  /// every message and proposes nothing; on recovery it rejoins with its
  /// in-memory state and adopts the current ballot from the next Accept.
  void SetCrashed(bool crashed);
  bool crashed() const { return crashed_; }

  void SubmitTransaction(const workload::Transaction& txn);

  uint64_t committed_batches() const { return committed_batches_; }
  uint64_t committed_txns() const { return committed_txns_; }

 private:
  struct Slot {
    workload::BatchPtr batch = workload::EmptyBatch();
    crypto::Digest digest;
    std::set<ActorId> accepted;
    bool committed = false;
  };

  /// Acceptor-side record of the highest-ballot value seen per slot —
  /// what a new leader re-proposes after failover.
  struct AcceptedValue {
    uint64_t ballot = 0;
    workload::BatchPtr batch = workload::EmptyBatch();
  };

  void HandleClientRequest(const sim::Envelope& env);
  void HandleAccept(const sim::Envelope& env);
  void HandleAccepted(const sim::Envelope& env);
  void HandleError(const sim::Envelope& env);
  void HandlePrepare(const sim::Envelope& env);
  void HandlePromise(const sim::Envelope& env);
  void MaybeProposeBatch();
  void ProposeBatch(workload::TransactionBatch batch);
  void ProposeAtSlot(SeqNum slot_num, workload::BatchPtr batch);
  void ScheduleBatchFlush();
  void ScheduleLeaderCheck();
  void OnLeaderCheck();
  /// New-leader takeover: starts the phase-1 majority read (Prepare
  /// broadcast + self-promise). Proposals are gated until the read
  /// completes in FinishPhaseOne.
  void TakeOverLeadership();
  /// Majority of promises in hand: merge the highest-ballot values into
  /// accepted_log_, re-propose everything above the commit frontier
  /// (no-op batches for unwitnessed holes), and resume normal proposing.
  void FinishPhaseOne();
  ActorId LeaderOf(uint64_t ballot) const {
    return peers_[(ballot - 1) % peers_.size()];
  }

  size_t Majority() const { return peers_.size() / 2 + 1; }

  ShimConfig config_;
  uint32_t index_;
  std::vector<ActorId> peers_;
  sim::Simulator* sim_;
  sim::Network* net_;

  ViewNum view_ = 0;     // Leader = view_ % n.
  uint64_t ballot_ = 1;  // Always view_ + 1.
  SeqNum next_slot_ = 1;
  std::map<SeqNum, Slot> slots_;
  std::map<SeqNum, AcceptedValue> accepted_log_;
  SeqNum slot_frontier_ = 0;  // Highest slot witnessed in any Accept.
  /// Contiguous commit frontier: as leader, advanced over slots_; as
  /// follower, learned from the leader's Accept piggyback. A takeover
  /// re-proposes only slots above this watermark.
  SeqNum commit_frontier_ = 0;
  std::deque<workload::Transaction> pending_;
  std::unordered_set<TxnId> seen_txns_;
  sim::EventId batch_flush_timer_ = 0;
  SimTime last_leader_activity_ = 0;
  bool leader_check_armed_ = false;
  bool crashed_ = false;
  uint64_t view_changes_ = 0;

  // Phase-1 read in flight (new-leader takeover). While pending, no
  // phase-2 proposals go out — a value chosen under an older ballot
  // could otherwise be overwritten by a fresh batch at the same slot.
  bool phase1_pending_ = false;
  uint64_t phase1_ballot_ = 0;
  std::set<ActorId> phase1_promises_;
  std::map<SeqNum, AcceptedValue> phase1_merged_;
  bool phase1_retry_armed_ = false;

  CommitCallback commit_cb_;
  uint64_t committed_batches_ = 0;
  uint64_t committed_txns_ = 0;
};

/// \brief NOSHIM baseline (paper §IX-H): no consensus at all — one
/// coordinator node receives client requests and immediately hands the
/// batch to the spawner, approximating the Baresi et al. architecture the
/// paper compares against.
class NoShimCoordinator : public sim::Actor {
 public:
  using CommitCallback = MultiPaxosReplica::CommitCallback;

  NoShimCoordinator(ActorId id, const ShimConfig& config, sim::Simulator* sim,
                    sim::Network* net);

  void OnMessage(const sim::Envelope& env) override;
  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }
  void SubmitTransaction(const workload::Transaction& txn);

  uint64_t committed_batches() const { return committed_batches_; }
  uint64_t committed_txns() const { return committed_txns_; }

 private:
  void MaybeFlush();
  void ScheduleBatchFlush();
  void Emit(workload::TransactionBatch batch);

  ShimConfig config_;
  sim::Simulator* sim_;
  sim::Network* net_;
  SeqNum next_seq_ = 1;
  std::deque<workload::Transaction> pending_;
  sim::EventId batch_flush_timer_ = 0;
  CommitCallback commit_cb_;
  uint64_t committed_batches_ = 0;
  uint64_t committed_txns_ = 0;
};

}  // namespace sbft::shim

#endif  // SBFT_SHIM_PAXOS_REPLICA_H_
