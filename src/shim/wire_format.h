#ifndef SBFT_SHIM_WIRE_FORMAT_H_
#define SBFT_SHIM_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace sbft::shim {

enum class MsgKind : uint8_t;

/// \brief Packed little-endian views over the fixed prefix of every wire
/// message (DESIGN.md §8).
///
/// Each header below mirrors, byte for byte, what the Encoder-based
/// serializer used to emit for the fixed-width fields at the front of a
/// message. The structs are plain byte arrays wrapped in typed accessors:
///  - alignment is 1 by construction, so `reinterpret_cast` from any
///    buffer offset is valid without #pragma pack and UBSan-clean;
///  - accessors assemble integers with shifts, so the layout is
///    little-endian on every host;
///  - `static_assert(sizeof(...))` pins each layout at compile time — a
///    field added without updating the wire contract fails the build.
///
/// Writing goes through the same structs (BuildWire packs a header on the
/// stack and appends it raw), so there is exactly one definition of each
/// message's byte layout. Parsing uses `TryFrom`, which bounds-checks the
/// buffer and the kind byte and returns nullptr instead of reading out of
/// bounds. Variable-length sections (batches, certificates, length-
/// prefixed byte strings) follow the fixed prefix and keep the
/// varint/length-prefixed encoding.
namespace wire {

struct U8Field {
  uint8_t b[1];
  uint8_t get() const { return b[0]; }
  void set(uint8_t v) { b[0] = v; }
};

struct BoolField {
  uint8_t b[1];
  bool get() const { return b[0] == 1; }
  /// True iff the byte is a canonical bool (0 or 1) — parsers must reject
  /// anything else so the encoding stays injective.
  bool valid() const { return b[0] <= 1; }
  void set(bool v) { b[0] = v ? 1 : 0; }
};

struct U32Field {
  uint8_t b[4];
  uint32_t get() const {
    return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
           static_cast<uint32_t>(b[2]) << 16 |
           static_cast<uint32_t>(b[3]) << 24;
  }
  void set(uint32_t v) {
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
};

struct U64Field {
  uint8_t b[8];
  uint64_t get() const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
    return v;
  }
  void set(uint64_t v) {
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
};

struct DigestField {
  uint8_t b[32];
  const uint8_t* data() const { return b; }
  uint8_t* mutable_data() { return b; }
};

/// Common 5-byte header every message starts with: kind + sender.
struct MsgHeader {
  U8Field kind;
  U32Field sender;
};
static_assert(sizeof(MsgHeader) == 5, "wire layout changed");

/// Bounds-checked view: nullptr unless the buffer holds at least a full
/// H and (when `expected_kind` is set) the kind byte matches.
template <typename H>
const H* TryFrom(const uint8_t* data, size_t size, MsgKind expected_kind) {
  if (data == nullptr || size < sizeof(H)) return nullptr;
  const H* h = reinterpret_cast<const H*>(data);
  if (h->hdr.kind.get() != static_cast<uint8_t>(expected_kind)) return nullptr;
  return h;
}

template <typename H>
const H* TryFrom(const Bytes& buf, MsgKind expected_kind) {
  return TryFrom<H>(buf.data(), buf.size(), expected_kind);
}

// --- Fixed prefixes, one struct per message kind. "complete" means the
// whole message is fixed-width; otherwise variable sections follow. ---

/// kClientRequest prefix: the transaction's fixed head (id, client,
/// flags); ops and the client signature follow.
struct ClientRequestHeader {
  MsgHeader hdr;
  U64Field txn_id;
  U32Field client;
  U8Field txn_flags;
};
static_assert(sizeof(ClientRequestHeader) == 18, "wire layout changed");

/// kPrePrepare prefix: (view, seq); batch then ∆ follow.
struct PrePrepareHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field seq;
};
static_assert(sizeof(PrePrepareHeader) == 21, "wire layout changed");

/// kPrepare — complete.
struct PrepareHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field seq;
  DigestField digest;
};
static_assert(sizeof(PrepareHeader) == 53, "wire layout changed");

/// kCommit prefix: the DS follows as length-prefixed bytes.
struct CommitHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field seq;
  DigestField digest;
};
static_assert(sizeof(CommitHeader) == 53, "wire layout changed");

/// kExecute prefix: batch, ∆, certificate, and spawner DS follow.
struct ExecuteHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field seq;
};
static_assert(sizeof(ExecuteHeader) == 21, "wire layout changed");

/// kVerify prefix: certificate, rw sets, refs, result, DS follow.
struct VerifyHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field seq;
  DigestField batch_digest;
};
static_assert(sizeof(VerifyHeader) == 53, "wire layout changed");

/// kResponse prefix: result bytes and the aborted flag follow.
struct ResponseHeader {
  MsgHeader hdr;
  U64Field txn_id;
  U32Field client;
  U64Field seq;
  DigestField batch_digest;
};
static_assert(sizeof(ResponseHeader) == 57, "wire layout changed");

/// kError prefix: the optional ⟨T⟩C follows when has_txn is set.
struct ErrorHeader {
  MsgHeader hdr;
  U8Field reason;
  U64Field kmax;
  DigestField txn_digest;
  BoolField has_txn;
};
static_assert(sizeof(ErrorHeader) == 47, "wire layout changed");

/// kReplace — complete.
struct ReplaceHeader {
  MsgHeader hdr;
  DigestField txn_digest;
};
static_assert(sizeof(ReplaceHeader) == 37, "wire layout changed");

/// kAck — complete.
struct AckHeader {
  MsgHeader hdr;
  BoolField has_seq;
  U64Field kmax;
  DigestField txn_digest;
};
static_assert(sizeof(AckHeader) == 46, "wire layout changed");

/// kViewChange prefix: prepared proofs and the DS follow.
struct ViewChangeHeader {
  MsgHeader hdr;
  U64Field new_view;
  U64Field stable_seq;
};
static_assert(sizeof(ViewChangeHeader) == 21, "wire layout changed");

/// kNewView prefix: sender list, reproposals, and the DS follow.
struct NewViewHeader {
  MsgHeader hdr;
  U64Field view;
};
static_assert(sizeof(NewViewHeader) == 13, "wire layout changed");

/// kCheckpoint prefix: compact certificates and batches follow.
struct CheckpointHeader {
  MsgHeader hdr;
  U64Field upto_seq;
  DigestField cert_log_root;
};
static_assert(sizeof(CheckpointHeader) == 45, "wire layout changed");

/// kStorageRead prefix: the key list follows.
struct StorageReadHeader {
  MsgHeader hdr;
  U64Field request_id;
};
static_assert(sizeof(StorageReadHeader) == 13, "wire layout changed");

/// kStorageReadReply prefix: the item list follows.
struct StorageReadReplyHeader {
  MsgHeader hdr;
  U64Field request_id;
};
static_assert(sizeof(StorageReadReplyHeader) == 13, "wire layout changed");

/// kPaxosAccept prefix: batch, ∆, committed_upto follow.
struct PaxosAcceptHeader {
  MsgHeader hdr;
  U64Field ballot;
  U64Field slot;
};
static_assert(sizeof(PaxosAcceptHeader) == 21, "wire layout changed");

/// kPaxosAccepted — complete.
struct PaxosAcceptedHeader {
  MsgHeader hdr;
  U64Field ballot;
  U64Field slot;
  DigestField digest;
};
static_assert(sizeof(PaxosAcceptedHeader) == 53, "wire layout changed");

/// kLinearVote prefix: the DS follows.
struct LinearVoteHeader {
  MsgHeader hdr;
  U8Field phase;
  U64Field view;
  U64Field seq;
  DigestField digest;
};
static_assert(sizeof(LinearVoteHeader) == 54, "wire layout changed");

/// kLinearCert prefix: the full certificate follows.
struct LinearCertHeader {
  MsgHeader hdr;
  U8Field phase;
};
static_assert(sizeof(LinearCertHeader) == 6, "wire layout changed");

/// kShardPrepareVote prefix: the optional watermark piggyback follows
/// when has_meta (the trailing section keeps legacy votes byte-exact).
struct ShardPrepareVoteHeader {
  MsgHeader hdr;
  U64Field global_id;
  U32Field shard;
  U64Field seq;
  BoolField commit;
};
static_assert(sizeof(ShardPrepareVoteHeader) == 26, "wire layout changed");

/// kShardCommitDecision prefix: optional (cseq, watermark) follows when
/// has_meta.
struct ShardCommitDecisionHeader {
  MsgHeader hdr;
  U64Field global_id;
  BoolField commit;
};
static_assert(sizeof(ShardCommitDecisionHeader) == 14, "wire layout changed");

/// kShardVoteCert prefix: the share list and optional watermark piggyback
/// follow (share-based quorum certificate, DESIGN.md §8).
struct ShardVoteCertHeader {
  MsgHeader hdr;
};
static_assert(sizeof(ShardVoteCertHeader) == 5, "wire layout changed");

// --- coordinator-group replication (DESIGN.md §10) ---
//
// These kinds only ever hit the wire when `coordinator_replicas > 1`; a
// singleton deployment emits none of them, which is what keeps the golden
// scenario digests byte-identical at the default configuration.

/// kCoordAppend prefix: the sent-to/participant shard list and an
/// optional quorum proof follow. One header serves heartbeats (entry 0),
/// decision records (entry 1), and launch records (entry 2).
struct CoordAppendHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field append_id;
  U8Field entry;
  U64Field global_id;
  BoolField commit;
  U64Field cseq;
  U64Field watermark;
  U32Field client;
};
static_assert(sizeof(CoordAppendHeader) == 51, "wire layout changed");

/// kCoordAck — complete. A follower's quorum ack for one append.
struct CoordAckHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field append_id;
};
static_assert(sizeof(CoordAckHeader) == 21, "wire layout changed");

/// kCoordSyncRequest — complete. New-leader takeover read.
struct CoordSyncRequestHeader {
  MsgHeader hdr;
  U64Field view;
};
static_assert(sizeof(CoordSyncRequestHeader) == 13, "wire layout changed");

/// kCoordSyncReply prefix: the decision-log entries and launch records
/// follow.
struct CoordSyncReplyHeader {
  MsgHeader hdr;
  U64Field view;
  U64Field next_cseq;
  U64Field watermark;
};
static_assert(sizeof(CoordSyncReplyHeader) == 29, "wire layout changed");

/// kCoordRedirect — complete. "The coordinator leader for `view` is
/// `leader`; re-send your standing votes there."
struct CoordRedirectHeader {
  MsgHeader hdr;
  U64Field view;
  U32Field leader;
};
static_assert(sizeof(CoordRedirectHeader) == 17, "wire layout changed");

/// kPaxosPrepare — complete. Phase-1a read from a candidate leader.
struct PaxosPrepareHeader {
  MsgHeader hdr;
  U64Field ballot;
  U64Field from_slot;
};
static_assert(sizeof(PaxosPrepareHeader) == 21, "wire layout changed");

/// kPaxosPromise prefix: the accepted-entry list follows.
struct PaxosPromiseHeader {
  MsgHeader hdr;
  U64Field ballot;
  U64Field commit_frontier;
};
static_assert(sizeof(PaxosPromiseHeader) == 21, "wire layout changed");

}  // namespace wire
}  // namespace sbft::shim

#endif  // SBFT_SHIM_WIRE_FORMAT_H_
