#ifndef SBFT_SHIM_PBFT_REPLICA_H_
#define SBFT_SHIM_PBFT_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/keys.h"
#include "shim/message.h"
#include "shim/shim_config.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sbft::shim {

/// \brief One shim node running PBFT (paper §IV-B, Fig. 3).
///
/// The replica orders client transactions into batches via the standard
/// three-phase protocol (MAC-authenticated PREPREPARE/PREPARE, DS-signed
/// COMMIT), pipelines multiple sequence numbers, runs the view-change
/// protocol on the §V-A timers, exchanges featherweight checkpoints
/// (§V-B), and reacts to the verifier's ERROR/REPLACE/ACK control
/// messages (Fig. 4). Execution is *not* done here: when a batch commits,
/// the commit callback hands (seq, batch, certificate) to the spawner
/// installed by core::Architecture.
class PbftReplica : public sim::Actor {
 public:
  /// Fired exactly once per committed sequence number on every honest
  /// node, in arbitrary seq order (pipelined consensus).
  using CommitCallback = std::function<void(
      SeqNum seq, ViewNum view, const workload::BatchPtr& batch,
      const crypto::CommitCertificate& cert)>;

  /// Fired when the verifier signals (via ERROR(kmax)) that executors for
  /// an already-committed sequence must be re-spawned.
  using RespawnCallback = std::function<void(SeqNum seq)>;

  /// Fired when the verifier notifies this node of a validated sequence
  /// (RESPONSE to primary, Fig. 3 line 33) — releases §VI-C locks.
  using ResponseObserver = std::function<void(const ResponseMsg& msg)>;

  /// `index` is the node's position in `peers` (identifier 0..n-1, §IV-B);
  /// the primary of view v is peers[v mod n].
  PbftReplica(ActorId id, uint32_t index, const ShimConfig& config,
              std::vector<ActorId> peers, crypto::KeyRegistry* keys,
              sim::Simulator* sim, sim::Network* net,
              ByzantineBehavior behavior = {});

  void OnMessage(const sim::Envelope& env) override;

  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }
  void SetRespawnCallback(RespawnCallback cb) { respawn_cb_ = std::move(cb); }
  void SetResponseObserver(ResponseObserver cb) {
    response_observer_ = std::move(cb);
  }

  /// True when this node is the primary of the current view.
  bool IsPrimary() const;
  ViewNum view() const { return view_; }
  uint32_t index() const { return index_; }

  /// Submits a transaction directly (used by NewView re-proposals and
  /// tests; normal flow arrives as ClientRequestMsg).
  void SubmitTransaction(const workload::Transaction& txn);

  /// True if this node has committed sequence `seq`.
  bool HasCommitted(SeqNum seq) const;

  /// Runtime crash-stop toggle (fault engine): while crashed the replica
  /// drops every message and its timers take no action. On recovery the
  /// node catches up through featherweight checkpoints (§V-B).
  void SetCrashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }

  /// Replaces the byzantine behaviour at runtime (fault engine); pass a
  /// default-constructed ByzantineBehavior to return the node to honesty.
  void SetBehavior(const ByzantineBehavior& behavior) {
    behavior_ = behavior;
  }
  const ByzantineBehavior& behavior() const { return behavior_; }

  /// Digest this node committed at `seq` (empty optional otherwise).
  std::optional<crypto::Digest> CommittedDigest(SeqNum seq) const;

  // --- statistics ---
  uint64_t committed_batches() const { return committed_batches_; }
  uint64_t committed_txns() const { return committed_txns_; }
  uint64_t view_changes() const { return view_changes_completed_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t dark_recoveries() const { return dark_recoveries_; }
  SeqNum stable_seq() const { return stable_seq_; }

 private:
  struct Slot {
    ViewNum view = 0;
    crypto::Digest digest;
    workload::BatchPtr batch = workload::EmptyBatch();
    bool have_preprepare = false;
    bool prepared = false;
    bool committed = false;
    std::set<ActorId> prepares;
    std::map<ActorId, Bytes> commit_sigs;
    crypto::CommitCertificate cert;  // Valid once committed.
    sim::EventId request_timer = 0;
  };

  // --- message handlers ---
  void HandleClientRequest(const sim::Envelope& env);
  void HandlePrePrepare(const sim::Envelope& env);
  void HandlePrepare(const sim::Envelope& env);
  void HandleCommit(const sim::Envelope& env);
  void HandleError(const sim::Envelope& env);
  void HandleReplace(const sim::Envelope& env);
  void HandleAck(const sim::Envelope& env);
  void HandleViewChange(const sim::Envelope& env);
  void HandleNewView(const sim::Envelope& env);
  void HandleCheckpoint(const sim::Envelope& env);

  // --- primary logic ---
  void MaybeProposeBatch();
  void ProposeBatch(workload::TransactionBatch batch);
  void ScheduleBatchFlush();

  // --- consensus helpers ---
  Slot& GetSlot(SeqNum seq);
  void TryPrepare(SeqNum seq);
  void TryCommit(SeqNum seq);
  void OnCommitted(SeqNum seq);
  void StartRequestTimer(SeqNum seq);
  void CancelRequestTimer(SeqNum seq);

  // --- view change ---
  void StartViewChange(ViewNum target);
  void MaybeCompleteViewChange(ViewNum target);
  void EnterView(ViewNum view);
  /// Hands queued transactions to the new primary after a view change
  /// (backups only) so they cannot starve under view-change churn.
  void ForwardPendingToPrimary();

  // --- checkpoints ---
  void MaybeTakeCheckpoint();
  void AdoptCertificate(const crypto::CompactCertificate& cert,
                        const PreparedProof& proof);

  ActorId PrimaryOf(ViewNum view) const;
  /// Sends `msg` to every other replica; the wire size is taken once from
  /// the message's memoized serialization, not recomputed per call site.
  void BroadcastToPeers(const MessagePtr& msg);
  bool Crashed() const {
    return crashed_ || (behavior_.byzantine && behavior_.crash);
  }

  ShimConfig config_;
  uint32_t index_;
  std::vector<ActorId> peers_;
  crypto::KeyRegistry* keys_;
  sim::Simulator* sim_;
  sim::Network* net_;
  ByzantineBehavior behavior_;
  bool crashed_ = false;  // Runtime crash-stop (fault engine).

  ViewNum view_ = 0;
  SeqNum next_seq_ = 1;         // Next sequence the primary assigns.
  SeqNum stable_seq_ = 0;       // Last checkpoint-stable sequence.
  std::map<SeqNum, Slot> slots_;

  // Primary batching.
  std::deque<workload::Transaction> pending_;
  std::unordered_set<TxnId> seen_txns_;
  sim::EventId batch_flush_timer_ = 0;

  // View change state.
  bool in_view_change_ = false;
  ViewNum target_view_ = 0;
  sim::EventId view_change_timer_ = 0;
  std::map<ViewNum, std::map<ActorId, std::vector<PreparedProof>>>
      view_change_msgs_;

  // Verifier re-transmission timers Υ, keyed by the ERROR identity.
  std::unordered_map<uint64_t, sim::EventId> retransmit_timers_;

  // Checkpoint protocol state.
  std::vector<crypto::Digest> cert_log_;  // Digest chain of committed certs.
  SeqNum last_checkpoint_sent_ = 0;
  std::map<SeqNum, std::map<ActorId, crypto::Digest>> checkpoint_votes_;

  CommitCallback commit_cb_;
  RespawnCallback respawn_cb_;
  ResponseObserver response_observer_;

  uint64_t committed_batches_ = 0;
  uint64_t committed_txns_ = 0;
  uint64_t view_changes_completed_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t dark_recoveries_ = 0;
};

}  // namespace sbft::shim

#endif  // SBFT_SHIM_PBFT_REPLICA_H_
