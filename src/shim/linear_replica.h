#ifndef SBFT_SHIM_LINEAR_REPLICA_H_
#define SBFT_SHIM_LINEAR_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "crypto/keys.h"
#include "shim/message.h"
#include "shim/shim_config.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sbft::shim {

/// \brief Linear-communication BFT shim node (the paper's §IV-B remark:
/// "shim can employ BFT protocols like PoE and SBFT that guarantee linear
/// communication with the help of advanced cryptographic schemes").
///
/// Normal case per sequence number (all O(n) instead of PBFT's O(n^2)):
///
///   1. primary -> all : PREPREPARE(batch, ∆, k)
///   2. node    -> primary : LINEAR_VOTE(prepare, DS)
///   3. primary -> all : LINEAR_CERT(prepare)   [2f+1 votes]
///   4. node    -> primary : LINEAR_VOTE(commit, DS over CommitSigningBytes)
///   5. primary -> all : LINEAR_CERT(commit)    [the standard C]
///
/// The commit certificate is byte-compatible with PbftReplica's, so
/// executors and the verifier are oblivious to which shim protocol ran.
/// Fault handling: request timers τ_m trigger a coordinated view change
/// (same ViewChangeMsg/NewViewMsg flow as PbftReplica); REPLACE from the
/// verifier does the same.
class LinearBftReplica : public sim::Actor {
 public:
  using CommitCallback = std::function<void(
      SeqNum seq, ViewNum view, const workload::BatchPtr& batch,
      const crypto::CommitCertificate& cert)>;
  using RespawnCallback = std::function<void(SeqNum seq)>;
  using ResponseObserver = std::function<void(const ResponseMsg& msg)>;

  LinearBftReplica(ActorId id, uint32_t index, const ShimConfig& config,
                   std::vector<ActorId> peers, crypto::KeyRegistry* keys,
                   sim::Simulator* sim, sim::Network* net,
                   ByzantineBehavior behavior = {});

  void OnMessage(const sim::Envelope& env) override;

  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }
  void SetRespawnCallback(RespawnCallback cb) { respawn_cb_ = std::move(cb); }
  void SetResponseObserver(ResponseObserver cb) {
    response_observer_ = std::move(cb);
  }

  bool IsPrimary() const;
  ViewNum view() const { return view_; }
  void SubmitTransaction(const workload::Transaction& txn);
  bool HasCommitted(SeqNum seq) const;

  /// Runtime crash-stop toggle (fault engine); mirrors
  /// PbftReplica::SetCrashed.
  void SetCrashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }

  /// Replaces the byzantine behaviour at runtime (fault engine).
  void SetBehavior(const ByzantineBehavior& behavior) {
    behavior_ = behavior;
  }
  const ByzantineBehavior& behavior() const { return behavior_; }

  uint64_t committed_batches() const { return committed_batches_; }
  uint64_t committed_txns() const { return committed_txns_; }
  uint64_t view_changes() const { return view_changes_completed_; }

 private:
  struct Slot {
    ViewNum view = 0;
    crypto::Digest digest;
    workload::BatchPtr batch = workload::EmptyBatch();
    bool have_preprepare = false;
    bool prepared = false;
    bool committed = false;
    // Collector state (primary only).
    std::map<ActorId, Bytes> prepare_votes;
    std::map<ActorId, Bytes> commit_votes;
    bool prepare_cert_sent = false;
    crypto::CommitCertificate cert;
    sim::EventId request_timer = 0;
  };

  void HandleClientRequest(const sim::Envelope& env);
  void HandlePrePrepare(const sim::Envelope& env);
  void HandleVote(const sim::Envelope& env);
  void HandleCert(const sim::Envelope& env);
  void HandleReplace(const sim::Envelope& env);
  void HandleError(const sim::Envelope& env);
  void HandleAck(const sim::Envelope& env);
  void HandleViewChange(const sim::Envelope& env);
  void HandleNewView(const sim::Envelope& env);

  void MaybeProposeBatch();
  void ProposeBatch(workload::TransactionBatch batch);
  void ScheduleBatchFlush();
  Slot& GetSlot(SeqNum seq) { return slots_[seq]; }
  void SendVote(SeqNum seq, LinearPhase phase);
  void OnCommitted(SeqNum seq);
  void StartRequestTimer(SeqNum seq);
  void StartViewChange(ViewNum target);
  void MaybeCompleteViewChange(ViewNum target);
  void EnterView(ViewNum view);
  /// Hands queued transactions to the new primary after a view change
  /// (backups only) so they cannot starve under view-change churn.
  void ForwardPendingToPrimary();

  ActorId PrimaryOf(ViewNum view) const;
  /// Sends `msg` to every other replica; wire size taken once from the
  /// message's memoized serialization.
  void BroadcastToPeers(const MessagePtr& msg);
  bool Crashed() const {
    return crashed_ || (behavior_.byzantine && behavior_.crash);
  }

  ShimConfig config_;
  uint32_t index_;
  std::vector<ActorId> peers_;
  crypto::KeyRegistry* keys_;
  sim::Simulator* sim_;
  sim::Network* net_;
  ByzantineBehavior behavior_;
  bool crashed_ = false;  // Runtime crash-stop (fault engine).

  ViewNum view_ = 0;
  SeqNum next_seq_ = 1;
  std::map<SeqNum, Slot> slots_;
  std::deque<workload::Transaction> pending_;
  std::unordered_set<TxnId> seen_txns_;
  sim::EventId batch_flush_timer_ = 0;

  bool in_view_change_ = false;
  ViewNum target_view_ = 0;
  std::map<ViewNum, std::map<ActorId, std::vector<PreparedProof>>>
      view_change_msgs_;
  // Verifier re-transmission timers Υ (Fig. 4), keyed by ERROR identity.
  std::map<uint64_t, sim::EventId> retransmit_timers_;

  CommitCallback commit_cb_;
  RespawnCallback respawn_cb_;
  ResponseObserver response_observer_;

  uint64_t committed_batches_ = 0;
  uint64_t committed_txns_ = 0;
  uint64_t view_changes_completed_ = 0;
};

}  // namespace sbft::shim

#endif  // SBFT_SHIM_LINEAR_REPLICA_H_
