#include "shim/pbft_replica.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace sbft::shim {

namespace {

/// Identity key for ERROR/ACK correlation (Υ timers).
uint64_t ErrorKey(bool has_seq, SeqNum kmax, const crypto::Digest& digest) {
  if (has_seq) return kmax | (1ull << 63);
  return Fnv1a64(digest.data(), crypto::Digest::kSize) & ~(1ull << 63);
}

}  // namespace

PbftReplica::PbftReplica(ActorId id, uint32_t index, const ShimConfig& config,
                         std::vector<ActorId> peers,
                         crypto::KeyRegistry* keys, sim::Simulator* sim,
                         sim::Network* net, ByzantineBehavior behavior)
    : Actor(id, "shim-" + std::to_string(index)),
      config_(config),
      index_(index),
      peers_(std::move(peers)),
      keys_(keys),
      sim_(sim),
      net_(net),
      behavior_(behavior) {
  assert(peers_.size() == config_.n);
  assert(peers_[index_] == id);
}

ActorId PbftReplica::PrimaryOf(ViewNum view) const {
  return peers_[view % peers_.size()];
}

bool PbftReplica::IsPrimary() const { return PrimaryOf(view_) == id(); }

void PbftReplica::BroadcastToPeers(const MessagePtr& msg) {
  net_->Broadcast(id(), peers_, id(), msg, msg->WireSize());
}

void PbftReplica::OnMessage(const sim::Envelope& env) {
  if (Crashed()) return;
  const auto* base = static_cast<const Message*>(env.message.get());
  if (base == nullptr) return;
  switch (base->kind) {
    case MsgKind::kClientRequest:
      HandleClientRequest(env);
      break;
    case MsgKind::kPrePrepare:
      HandlePrePrepare(env);
      break;
    case MsgKind::kPrepare:
      HandlePrepare(env);
      break;
    case MsgKind::kCommit:
      HandleCommit(env);
      break;
    case MsgKind::kError:
      HandleError(env);
      break;
    case MsgKind::kReplace:
      HandleReplace(env);
      break;
    case MsgKind::kAck:
      HandleAck(env);
      break;
    case MsgKind::kViewChange:
      HandleViewChange(env);
      break;
    case MsgKind::kNewView:
      HandleNewView(env);
      break;
    case MsgKind::kCheckpoint:
      HandleCheckpoint(env);
      break;
    case MsgKind::kResponse: {
      const auto* msg = MessageAs<ResponseMsg>(env, MsgKind::kResponse);
      if (msg != nullptr && response_observer_) response_observer_(*msg);
      break;
    }
    default:
      break;  // Not addressed to the shim.
  }
}

// ---------------------------------------------------------------------------
// Client requests and batching (primary).
// ---------------------------------------------------------------------------

void PbftReplica::HandleClientRequest(const sim::Envelope& env) {
  const auto* msg = MessageAs<ClientRequestMsg>(env, MsgKind::kClientRequest);
  if (msg == nullptr) return;
  // Well-formedness: the client's DS must verify (Fig. 3 "P checks if
  // ⟨T⟩C is well-formed").
  if (!keys_->Verify(msg->txn.client,
                     ClientRequestMsg::SigningBytes(msg->txn),
                     msg->client_sig)) {
    return;
  }
  if (!IsPrimary()) {
    // Forward to the current primary (clients may briefly lag a view
    // change).
    net_->Send(id(), PrimaryOf(view_), env.message, msg->WireSize());
    return;
  }
  if (behavior_.byzantine && behavior_.suppress_requests) {
    return;  // §V-A request-ignorance attack.
  }
  SubmitTransaction(msg->txn);
}

void PbftReplica::SubmitTransaction(const workload::Transaction& txn) {
  if (seen_txns_.contains(txn.id)) return;
  seen_txns_.insert(txn.id);
  pending_.push_back(txn);
  MaybeProposeBatch();
}

void PbftReplica::ScheduleBatchFlush() {
  if (batch_flush_timer_ != 0 || pending_.empty()) return;
  batch_flush_timer_ = sim_->Schedule(config_.batch_timeout, [this]() {
    batch_flush_timer_ = 0;
    if (Crashed() || !IsPrimary() || in_view_change_ || pending_.empty()) {
      return;
    }
    size_t take = std::min(pending_.size(), config_.batch_size);
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    ProposeBatch(std::move(batch));
    MaybeProposeBatch();
  });
}

void PbftReplica::MaybeProposeBatch() {
  if (Crashed() || !IsPrimary() || in_view_change_) return;
  // Pipeline bound (§VI-A concurrent consensus): count in-flight slots.
  size_t inflight = 0;
  for (const auto& [seq, slot] : slots_) {
    if (!slot.committed) ++inflight;
  }
  while (pending_.size() >= config_.batch_size &&
         inflight < config_.pipeline_width) {
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(),
                      pending_.begin() + config_.batch_size);
    pending_.erase(pending_.begin(),
                   pending_.begin() + config_.batch_size);
    ProposeBatch(std::move(batch));
    ++inflight;
  }
  ScheduleBatchFlush();
}

void PbftReplica::ProposeBatch(workload::TransactionBatch batch) {
  SeqNum seq = next_seq_++;
  auto msg = std::make_shared<PrePrepareMsg>(id());
  msg->view = view_;
  msg->seq = seq;
  msg->batch = workload::ShareBatch(std::move(batch));
  msg->digest = msg->batch->Hash();

  Slot& slot = GetSlot(seq);
  slot.view = view_;
  slot.digest = msg->digest;
  slot.batch = msg->batch;
  slot.have_preprepare = true;
  slot.prepares.insert(id());  // The pre-prepare is the primary's prepare.

  if (behavior_.byzantine && behavior_.equivocate) {
    // §V-B equivocation: half the backups get a different batch at the
    // same sequence number.
    auto alt = std::make_shared<PrePrepareMsg>(id());
    alt->view = view_;
    alt->seq = seq;
    auto alt_batch = std::make_shared<workload::TransactionBatch>(*msg->batch);
    if (!alt_batch->txns.empty()) {
      alt_batch->txns.pop_back();  // Different content, same seq.
    }
    alt->batch = std::move(alt_batch);
    alt->digest = alt->batch->Hash();
    bool flip = false;
    for (ActorId peer : peers_) {
      if (peer == id()) continue;
      if (flip) {
        net_->Send(id(), peer, alt, alt->WireSize());
      } else {
        net_->Send(id(), peer, msg, msg->WireSize());
      }
      flip = !flip;
    }
  } else {
    for (ActorId peer : peers_) {
      if (peer == id()) continue;
      if (behavior_.byzantine &&
          std::find(behavior_.dark_nodes.begin(), behavior_.dark_nodes.end(),
                    peer) != behavior_.dark_nodes.end()) {
        continue;  // §V-B nodes-in-dark: exclude from consensus.
      }
      net_->Send(id(), peer, msg, msg->WireSize());
    }
  }
  StartRequestTimer(seq);
  TryPrepare(seq);
}

// ---------------------------------------------------------------------------
// Three-phase consensus.
// ---------------------------------------------------------------------------

PbftReplica::Slot& PbftReplica::GetSlot(SeqNum seq) { return slots_[seq]; }

void PbftReplica::HandlePrePrepare(const sim::Envelope& env) {
  const auto* msg = MessageAs<PrePrepareMsg>(env, MsgKind::kPrePrepare);
  if (msg == nullptr) return;
  if (msg->view != view_ || in_view_change_) return;
  if (env.from != PrimaryOf(view_)) return;  // Only the primary proposes.
  if (msg->seq <= stable_seq_ ||
      msg->seq > stable_seq_ + 4 * config_.pipeline_width) {
    return;  // Outside watermarks.
  }
  if (msg->batch->Hash() != msg->digest) return;  // Malformed.

  Slot& slot = GetSlot(msg->seq);
  if (slot.committed) return;
  if (slot.have_preprepare && slot.view == msg->view &&
      slot.digest != msg->digest) {
    // Equivocation observed for this sequence: refuse the second proposal.
    return;
  }
  if (slot.have_preprepare && slot.view == msg->view) return;  // Duplicate.

  slot.view = msg->view;
  slot.digest = msg->digest;
  slot.batch = msg->batch;
  slot.have_preprepare = true;
  slot.prepares.insert(env.from);  // Primary's implicit prepare.
  slot.prepares.insert(id());      // Our own.

  auto prepare = std::make_shared<PrepareMsg>(id());
  prepare->view = msg->view;
  prepare->seq = msg->seq;
  prepare->digest = msg->digest;
  BroadcastToPeers(prepare);

  StartRequestTimer(msg->seq);
  TryPrepare(msg->seq);
}

void PbftReplica::HandlePrepare(const sim::Envelope& env) {
  const auto* msg = MessageAs<PrepareMsg>(env, MsgKind::kPrepare);
  if (msg == nullptr) return;
  if (msg->view != view_) return;
  Slot& slot = GetSlot(msg->seq);
  if (slot.have_preprepare &&
      (slot.view != msg->view || slot.digest != msg->digest)) {
    return;  // Vote for a different proposal.
  }
  slot.prepares.insert(env.from);
  TryPrepare(msg->seq);
}

void PbftReplica::TryPrepare(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  if (slot.prepared || !slot.have_preprepare) return;
  if (slot.prepares.size() < config_.quorum()) return;
  slot.prepared = true;

  // Broadcast the DS-signed COMMIT (Fig. 3 line 13).
  auto commit = std::make_shared<CommitMsg>(id());
  commit->view = slot.view;
  commit->seq = seq;
  commit->digest = slot.digest;
  commit->ds = keys_->Sign(
      id(), crypto::CommitSigningBytes(slot.view, seq, slot.digest));
  slot.commit_sigs[id()] = commit->ds;
  BroadcastToPeers(commit);
  TryCommit(seq);
}

void PbftReplica::HandleCommit(const sim::Envelope& env) {
  const auto* msg = MessageAs<CommitMsg>(env, MsgKind::kCommit);
  if (msg == nullptr) return;
  Slot& slot = GetSlot(msg->seq);
  if (slot.committed) return;
  if (slot.have_preprepare &&
      (slot.view != msg->view || slot.digest != msg->digest)) {
    return;
  }
  // Well-formedness: the commit signature must verify before it can count
  // toward the certificate.
  if (!keys_->Verify(
          env.from,
          crypto::CommitSigningBytes(msg->view, msg->seq, msg->digest),
          msg->ds)) {
    return;
  }
  slot.commit_sigs[env.from] = msg->ds;
  TryCommit(msg->seq);
}

void PbftReplica::TryCommit(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  if (slot.committed || !slot.prepared) return;
  if (slot.commit_sigs.size() < config_.quorum()) return;
  slot.committed = true;

  // Assemble the commit certificate C (Fig. 3 line 8).
  slot.cert.view = slot.view;
  slot.cert.seq = seq;
  slot.cert.digest = slot.digest;
  slot.cert.signatures.clear();
  for (const auto& [signer, sig] : slot.commit_sigs) {
    if (slot.cert.signatures.size() >= config_.quorum()) break;
    slot.cert.signatures.push_back({signer, sig});
  }
  OnCommitted(seq);
}

void PbftReplica::OnCommitted(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  CancelRequestTimer(seq);
  // Resolve missing-request Υ timers for the transactions that just
  // committed: the concern they track ("will the primary ever propose
  // this txn?") is settled — and for ERRORs synthesized by a peer
  // (ForwardPendingToPrimary) no verifier ACK will ever arrive, so
  // without this the timer would force a view change on a success path.
  if (!retransmit_timers_.empty()) {
    for (const workload::Transaction& txn : slot.batch->txns) {
      auto it = retransmit_timers_.find(ErrorKey(false, 0, txn.Hash()));
      if (it != retransmit_timers_.end()) {
        sim_->Cancel(it->second);
        retransmit_timers_.erase(it);
      }
    }
  }
  ++committed_batches_;
  committed_txns_ += slot.batch->txns.size();
  cert_log_.push_back(slot.digest);
  if (commit_cb_) {
    commit_cb_(seq, slot.view, slot.batch, slot.cert);
  }
  MaybeTakeCheckpoint();
  if (IsPrimary()) MaybeProposeBatch();
}

bool PbftReplica::HasCommitted(SeqNum seq) const {
  if (seq <= stable_seq_) return true;  // Checkpoint-stable.
  auto it = slots_.find(seq);
  return it != slots_.end() && it->second.committed;
}

std::optional<crypto::Digest> PbftReplica::CommittedDigest(SeqNum seq) const {
  auto it = slots_.find(seq);
  if (it == slots_.end() || !it->second.committed) return std::nullopt;
  return it->second.digest;
}

// ---------------------------------------------------------------------------
// Timers (§V-A).
// ---------------------------------------------------------------------------

void PbftReplica::StartRequestTimer(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  if (slot.request_timer != 0) return;
  slot.request_timer = sim_->Schedule(config_.request_timeout, [this, seq]() {
    Slot& s = GetSlot(seq);
    s.request_timer = 0;
    if (s.committed) return;
    SBFT_LOG(kDebug) << name() << " τ_m expired for seq " << seq
                     << ", requesting view change";
    StartViewChange(view_ + 1);
  });
}

void PbftReplica::CancelRequestTimer(SeqNum seq) {
  Slot& slot = GetSlot(seq);
  if (slot.request_timer != 0) {
    sim_->Cancel(slot.request_timer);
    slot.request_timer = 0;
  }
}

// ---------------------------------------------------------------------------
// Verifier control messages (Fig. 4).
// ---------------------------------------------------------------------------

void PbftReplica::HandleError(const sim::Envelope& env) {
  const auto* msg = MessageAs<ErrorMsg>(env, MsgKind::kError);
  if (msg == nullptr) return;
  bool has_seq = msg->reason == ErrorMsg::Reason::kGap;
  uint64_t key = ErrorKey(has_seq, msg->kmax, msg->txn_digest);

  // Forward to the primary and arm the re-transmission timer Υ (§V-A3).
  if (!IsPrimary()) {
    net_->Send(id(), PrimaryOf(view_), env.message, msg->WireSize());
  } else {
    if (msg->reason == ErrorMsg::Reason::kGap) {
      if (HasCommitted(msg->kmax)) {
        // Committed but the verifier saw no (or not enough) VERIFY
        // messages: re-spawn the executors (§V-A "less executors").
        if (respawn_cb_) respawn_cb_(msg->kmax);
      }
      // Otherwise consensus is still in flight; τ_m covers it.
    } else if (msg->has_txn &&
               !(behavior_.byzantine && behavior_.suppress_requests)) {
      // Missing request with ⟨T⟩C attached by the trusted verifier:
      // propose it (covers a new primary after a suppression attack).
      SubmitTransaction(msg->txn);
    }
  }
  if (!retransmit_timers_.contains(key)) {
    retransmit_timers_[key] =
        sim_->Schedule(config_.retransmit_timeout, [this, key]() {
          retransmit_timers_.erase(key);
          SBFT_LOG(kDebug) << name()
                           << " Υ expired, primary unresponsive; view change";
          StartViewChange(view_ + 1);
        });
  }
}

void PbftReplica::HandleReplace(const sim::Envelope& env) {
  const auto* msg = MessageAs<ReplaceMsg>(env, MsgKind::kReplace);
  if (msg == nullptr) return;
  // The verifier concluded the primary is byzantine (Fig. 4 line 14).
  StartViewChange(view_ + 1);
}

void PbftReplica::HandleAck(const sim::Envelope& env) {
  const auto* msg = MessageAs<AckMsg>(env, MsgKind::kAck);
  if (msg == nullptr) return;
  uint64_t key = ErrorKey(msg->has_seq, msg->kmax, msg->txn_digest);
  auto it = retransmit_timers_.find(key);
  if (it != retransmit_timers_.end()) {
    sim_->Cancel(it->second);
    retransmit_timers_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// View change (§V-A4).
// ---------------------------------------------------------------------------

void PbftReplica::StartViewChange(ViewNum target) {
  if (Crashed()) return;  // A crashed node's timers take no action.
  if (target <= view_) return;
  if (in_view_change_ && target <= target_view_) return;
  in_view_change_ = true;
  target_view_ = target;

  auto msg = std::make_shared<ViewChangeMsg>(id());
  msg->new_view = target;
  msg->stable_seq = stable_seq_;
  for (const auto& [seq, slot] : slots_) {
    if (seq <= stable_seq_) continue;
    if (slot.prepared || slot.committed) {
      PreparedProof proof;
      proof.view = slot.view;
      proof.seq = seq;
      proof.digest = slot.digest;
      proof.batch = slot.batch;
      msg->prepared.push_back(std::move(proof));
    }
  }
  msg->ds = keys_->Sign(
      id(), ViewChangeMsg::SigningBytes(target, stable_seq_));
  view_change_msgs_[target][id()] = msg->prepared;
  BroadcastToPeers(msg);

  if (view_change_timer_ != 0) sim_->Cancel(view_change_timer_);
  view_change_timer_ =
      sim_->Schedule(config_.view_change_timeout, [this, target]() {
        view_change_timer_ = 0;
        if (in_view_change_ && view_ < target) {
          StartViewChange(target + 1);  // Next primary also failed.
        }
      });
  MaybeCompleteViewChange(target);
}

void PbftReplica::HandleViewChange(const sim::Envelope& env) {
  const auto* msg = MessageAs<ViewChangeMsg>(env, MsgKind::kViewChange);
  if (msg == nullptr) return;
  if (msg->new_view <= view_) return;
  if (!keys_->Verify(
          env.from,
          ViewChangeMsg::SigningBytes(msg->new_view, msg->stable_seq),
          msg->ds)) {
    return;
  }
  view_change_msgs_[msg->new_view][env.from] = msg->prepared;

  // Liveness rule: join the view change once f+1 distinct nodes ask for a
  // higher view (prevents byzantine nodes from stalling honest ones).
  if (!in_view_change_ || target_view_ < msg->new_view) {
    size_t votes = view_change_msgs_[msg->new_view].size();
    if (votes >= config_.f() + 1) {
      StartViewChange(msg->new_view);
    }
  }
  MaybeCompleteViewChange(msg->new_view);
}

void PbftReplica::MaybeCompleteViewChange(ViewNum target) {
  if (PrimaryOf(target) != id()) return;
  if (view_ >= target) return;
  auto it = view_change_msgs_.find(target);
  if (it == view_change_msgs_.end() || it->second.size() < config_.quorum()) {
    return;
  }

  // Merge prepared proofs: per sequence, keep the digest reported most
  // often (a committed request appears in >= f+1 honest VIEWCHANGEs in any
  // quorum, beating up to f fabrications), tie-broken by higher view.
  struct Candidate {
    size_t votes = 0;
    ViewNum view = 0;
    PreparedProof proof;
  };
  std::map<SeqNum, std::map<std::string, Candidate>> per_seq;
  for (const auto& [sender, proofs] : it->second) {
    for (const PreparedProof& p : proofs) {
      Candidate& c = per_seq[p.seq][p.digest.ToHex()];
      ++c.votes;
      if (c.votes == 1 || p.view > c.view) {
        c.view = p.view;
        c.proof = p;
      }
    }
  }

  auto nv = std::make_shared<NewViewMsg>(id());
  nv->view = target;
  for (const auto& [sender, proofs] : it->second) {
    nv->view_change_senders.push_back(sender);
  }
  SeqNum max_seq = stable_seq_;
  for (auto& [seq, candidates] : per_seq) {
    const Candidate* best = nullptr;
    for (auto& [hex, c] : candidates) {
      if (best == nullptr || c.votes > best->votes ||
          (c.votes == best->votes && c.view > best->view)) {
        best = &c;
      }
    }
    PreparedProof proof = best->proof;
    proof.view = target;
    nv->reproposals.push_back(std::move(proof));
    max_seq = std::max(max_seq, seq);
  }
  // Fill sequence gaps with empty batches so the verifier's k_max cursor
  // can always advance (a null request executes trivially).
  for (SeqNum seq = stable_seq_ + 1; seq < max_seq; ++seq) {
    if (!per_seq.contains(seq)) {
      PreparedProof gap;
      gap.view = target;
      gap.seq = seq;
      gap.batch = workload::EmptyBatch();
      gap.digest = gap.batch->Hash();
      nv->reproposals.push_back(std::move(gap));
    }
  }
  nv->ds = keys_->Sign(
      id(), NewViewMsg::SigningBytes(target, nv->reproposals.size()));

  BroadcastToPeers(nv);
  EnterView(target);

  // Re-run consensus for the re-proposals in the new view.
  next_seq_ = std::max(next_seq_, max_seq + 1);
  for (const PreparedProof& p : nv->reproposals) {
    Slot& slot = GetSlot(p.seq);
    if (slot.committed) continue;
    slot.view = target;
    slot.digest = p.digest;
    slot.batch = p.batch;
    slot.have_preprepare = true;
    slot.prepared = false;
    slot.prepares.clear();
    slot.commit_sigs.clear();
    slot.prepares.insert(id());

    auto pp = std::make_shared<PrePrepareMsg>(id());
    pp->view = target;
    pp->seq = p.seq;
    pp->batch = p.batch;
    pp->digest = p.digest;
    BroadcastToPeers(pp);
    StartRequestTimer(p.seq);
  }
  MaybeProposeBatch();
}

void PbftReplica::HandleNewView(const sim::Envelope& env) {
  const auto* msg = MessageAs<NewViewMsg>(env, MsgKind::kNewView);
  if (msg == nullptr) return;
  if (msg->view <= view_) return;
  if (env.from != PrimaryOf(msg->view)) return;
  if (!keys_->Verify(
          env.from,
          NewViewMsg::SigningBytes(msg->view, msg->reproposals.size()),
          msg->ds)) {
    return;
  }
  EnterView(msg->view);
  for (const PreparedProof& p : msg->reproposals) {
    Slot& slot = GetSlot(p.seq);
    if (slot.committed) continue;
    if (p.batch->Hash() != p.digest) continue;  // Malformed re-proposal.
    slot.view = msg->view;
    slot.digest = p.digest;
    slot.batch = p.batch;
    slot.have_preprepare = true;
    slot.prepared = false;
    slot.prepares.clear();
    slot.commit_sigs.clear();
    slot.prepares.insert(env.from);
    slot.prepares.insert(id());

    auto prepare = std::make_shared<PrepareMsg>(id());
    prepare->view = msg->view;
    prepare->seq = p.seq;
    prepare->digest = p.digest;
    BroadcastToPeers(prepare);
    StartRequestTimer(p.seq);
    TryPrepare(p.seq);
  }
}

void PbftReplica::EnterView(ViewNum view) {
  if (view <= view_) return;
  view_ = view;
  in_view_change_ = false;
  ++view_changes_completed_;
  if (view_change_timer_ != 0) {
    sim_->Cancel(view_change_timer_);
    view_change_timer_ = 0;
  }
  // Old view-change bookkeeping for lower views is obsolete.
  std::erase_if(view_change_msgs_,
                [view](const auto& kv) { return kv.first <= view; });
  // The Υ timers were armed against the *old* primary; the view change
  // they would demand has just happened. Left running they re-trigger a
  // view change the instant the new view starts, phase-locking the shim
  // into churn (found by the partition_heal fault scenario). If the new
  // primary stalls too, fresh ERRORs re-arm them.
  for (auto& [key, timer] : retransmit_timers_) {
    sim_->Cancel(timer);
  }
  retransmit_timers_.clear();
  SBFT_LOG(kInfo) << name() << " entered view " << view_ << " (primary "
                  << PrimaryOf(view_) << ")";
  ForwardPendingToPrimary();
}

void PbftReplica::ForwardPendingToPrimary() {
  // Liveness: transactions accepted while a view change was in flight
  // (typically handed over by the verifier's ERROR path) must not rot in
  // a backup's queue — under repeated view changes the ERROR rounds and
  // the Υ expiries stay phase-locked, so the queue would never drain and
  // the system livelocks (found by the partition_heal fault scenario).
  // Hand them to the new primary through the same ERROR-with-txn message
  // the verifier uses.
  if (IsPrimary() || pending_.empty()) return;
  for (const workload::Transaction& txn : pending_) {
    auto error = std::make_shared<ErrorMsg>(id());
    error->reason = ErrorMsg::Reason::kMissingRequest;
    error->txn_digest = txn.Hash();
    error->has_txn = true;
    error->txn = txn;
    net_->Send(id(), PrimaryOf(view_), error, error->WireSize());
    // The forward is a single unacked send; if it is lost (that is the
    // network model here) this node must be able to re-accept the txn
    // from a later verifier ERROR — forget that we saw it.
    seen_txns_.erase(txn.id);
  }
  pending_.clear();
}

// ---------------------------------------------------------------------------
// Featherweight checkpoints (§V-B).
// ---------------------------------------------------------------------------

void PbftReplica::MaybeTakeCheckpoint() {
  // Find the highest contiguous committed sequence.
  SeqNum contiguous = last_checkpoint_sent_;
  while (true) {
    auto it = slots_.find(contiguous + 1);
    if (it == slots_.end() || !it->second.committed) break;
    ++contiguous;
  }
  // Checkpoints are cut at deterministic interval boundaries so every
  // node's Merkle root covers the same window and the 2f+1 matching rule
  // can fire.
  SeqNum boundary =
      (contiguous / config_.checkpoint_interval) * config_.checkpoint_interval;
  while (last_checkpoint_sent_ < boundary) {
    SeqNum from = last_checkpoint_sent_ + 1;
    SeqNum upto = std::min<SeqNum>(
        boundary, last_checkpoint_sent_ + config_.checkpoint_interval);

    auto msg = std::make_shared<CheckpointMsg>(id());
    msg->upto_seq = upto;
    std::vector<crypto::Digest> leaves;
    for (SeqNum seq = from; seq <= upto; ++seq) {
      auto it = slots_.find(seq);
      if (it == slots_.end()) continue;  // Pruned below stable.
      leaves.push_back(it->second.digest);
      // Featherweight: only the signed proof (compact certificate), not
      // the requests or full commit proofs (§V-B).
      msg->certs.push_back(
          crypto::CompactCertificate::FromFull(it->second.cert));
    }
    msg->cert_log_root = crypto::MerkleTree::ComputeRoot(leaves);
    ++checkpoints_taken_;
    checkpoint_votes_[msg->upto_seq][id()] = msg->cert_log_root;
    BroadcastToPeers(msg);
    last_checkpoint_sent_ = upto;
  }
}

void PbftReplica::HandleCheckpoint(const sim::Envelope& env) {
  const auto* msg = MessageAs<CheckpointMsg>(env, MsgKind::kCheckpoint);
  if (msg == nullptr) return;
  if (msg->upto_seq <= stable_seq_) return;

  // Dark-node recovery: adopt any valid certificate we have not committed.
  for (const crypto::CompactCertificate& cert : msg->certs) {
    if (cert.seq <= stable_seq_) continue;
    Slot& slot = GetSlot(cert.seq);
    if (slot.committed) continue;
    if (!cert.Validate(*keys_, config_.quorum()).ok()) continue;
    PreparedProof proof;  // Batch content is unknown to a dark node.
    proof.seq = cert.seq;
    proof.digest = cert.digest;
    AdoptCertificate(cert, proof);
  }

  checkpoint_votes_[msg->upto_seq][env.from] = msg->cert_log_root;
  // Stability: 2f+1 matching roots.
  auto& votes = checkpoint_votes_[msg->upto_seq];
  std::map<std::string, size_t> root_counts;
  for (const auto& [sender, root] : votes) {
    if (++root_counts[root.ToHex()] >= config_.quorum()) {
      stable_seq_ = std::max(stable_seq_, msg->upto_seq);
      // Prune state below the stable point.
      for (auto it = slots_.begin(); it != slots_.end();) {
        if (it->first <= stable_seq_ && it->second.committed) {
          it = slots_.erase(it);
        } else {
          ++it;
        }
      }
      std::erase_if(checkpoint_votes_, [this](const auto& kv) {
        return kv.first <= stable_seq_;
      });
      break;
    }
  }
}

void PbftReplica::AdoptCertificate(const crypto::CompactCertificate& cert,
                                   const PreparedProof& proof) {
  Slot& slot = GetSlot(cert.seq);
  slot.view = cert.view;
  slot.digest = cert.digest;
  slot.batch = proof.batch;
  slot.have_preprepare = true;
  slot.prepared = true;
  slot.committed = true;
  slot.cert.view = cert.view;
  slot.cert.seq = cert.seq;
  slot.cert.digest = cert.digest;
  CancelRequestTimer(cert.seq);
  ++dark_recoveries_;
  // No commit callback: the certificate proves the shim already agreed and
  // executors were (or will be) spawned by the nodes that committed live.
}

}  // namespace sbft::shim
