#ifndef SBFT_SHIM_SHIM_CONFIG_H_
#define SBFT_SHIM_SHIM_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace sbft::shim {

/// Static parameters of the shim (the edge-device consensus layer).
struct ShimConfig {
  /// Number of shim nodes n_R (>= 3f_R + 1).
  uint32_t n = 4;

  /// Batch size for consensus (paper default: 100 client transactions).
  size_t batch_size = 100;

  /// Flush a partial batch after this long (keeps latency bounded at low
  /// load).
  SimDuration batch_timeout = Millis(5);

  /// Node timer τ_m: started on accepting a PREPREPARE, cancelled on
  /// commit; expiry triggers a view change (§V-A).
  SimDuration request_timeout = Millis(800);

  /// Node re-transmission timer Υ: started when forwarding an ERROR to
  /// the primary; expiry without an ACK triggers a view change (§V-A2).
  SimDuration retransmit_timeout = Millis(600);

  /// If a view change does not complete in this window, escalate to the
  /// next view.
  SimDuration view_change_timeout = Millis(1500);

  /// Featherweight checkpoint period in sequence numbers (§V-B).
  uint32_t checkpoint_interval = 128;

  /// Maximum in-flight consensus slots (PBFT watermark window); this is
  /// what "concurrent consensus invocation" (§VI-A) bounds.
  size_t pipeline_width = 64;

  /// Tolerated byzantine shim nodes f_R = floor((n-1)/3).
  uint32_t f() const { return (n - 1) / 3; }
  /// Quorum size 2f_R + 1.
  uint32_t quorum() const { return 2 * f() + 1; }
};

/// \brief Byzantine behaviour of one shim node. Default-constructed nodes
/// are honest; the attack drills (§V) flip individual switches.
struct ByzantineBehavior {
  /// Master switch; when false all other fields are ignored.
  bool byzantine = false;

  /// Crash-stop: the node stops participating entirely.
  bool crash = false;

  /// Request suppression (§V-A): as primary, drop client requests.
  bool suppress_requests = false;

  /// Nodes-in-dark (§V-B): as primary, exclude `dark_nodes` from
  /// PREPREPARE broadcasts (keeps the quorum at exactly 2f+1).
  std::vector<ActorId> dark_nodes;

  /// Equivocation (§V-B): as primary, propose two different batches for
  /// the same sequence number to two halves of the shim.
  bool equivocate = false;

  /// Byzantine-abort attack (§VI-B): as spawner, delay spawning executors
  /// by this much (0 = no delay).
  SimDuration spawn_delay = 0;

  /// Fewer-executors attack (§V-A): as spawner, spawn only this many
  /// executors (-1 = honest count).
  int spawn_count_override = -1;

  /// Verifier-flooding (§V-C): as spawner, spawn this many duplicate
  /// executor sets.
  int duplicate_spawns = 0;
};

}  // namespace sbft::shim

#endif  // SBFT_SHIM_SHIM_CONFIG_H_
