#include "shim/paxos_replica.h"

#include <algorithm>

namespace sbft::shim {

MultiPaxosReplica::MultiPaxosReplica(ActorId id, uint32_t index,
                                     const ShimConfig& config,
                                     std::vector<ActorId> peers,
                                     sim::Simulator* sim, sim::Network* net)
    : Actor(id, "paxos-" + std::to_string(index)),
      config_(config),
      index_(index),
      peers_(std::move(peers)),
      sim_(sim),
      net_(net) {
  last_leader_activity_ = sim_->now();
}

void MultiPaxosReplica::SetCrashed(bool crashed) {
  crashed_ = crashed;
  if (crashed_) {
    // A phase-1 read dies with the candidate; promises that trickle in
    // after recovery must not complete a stale read.
    phase1_pending_ = false;
    phase1_promises_.clear();
    phase1_merged_.clear();
    return;
  }
  if (!crashed_) {
    last_leader_activity_ = sim_->now();
    // Evidence queued from before (or during) the outage still needs
    // the liveness check running.
    ScheduleLeaderCheck();
  }
}

void MultiPaxosReplica::OnMessage(const sim::Envelope& env) {
  if (crashed_) return;
  const auto* base = static_cast<const Message*>(env.message.get());
  if (base == nullptr) return;
  switch (base->kind) {
    case MsgKind::kClientRequest:
      HandleClientRequest(env);
      break;
    case MsgKind::kPaxosAccept:
      HandleAccept(env);
      break;
    case MsgKind::kPaxosAccepted:
      HandleAccepted(env);
      break;
    case MsgKind::kError:
      HandleError(env);
      break;
    case MsgKind::kPaxosPrepare:
      HandlePrepare(env);
      break;
    case MsgKind::kPaxosPromise:
      HandlePromise(env);
      break;
    default:
      break;
  }
}

void MultiPaxosReplica::HandleClientRequest(const sim::Envelope& env) {
  const auto* msg = MessageAs<ClientRequestMsg>(env, MsgKind::kClientRequest);
  if (msg == nullptr) return;
  if (!IsLeader()) {
    net_->Send(id(), LeaderOf(ballot_), env.message, msg->WireSize());
    return;
  }
  SubmitTransaction(msg->txn);
}

void MultiPaxosReplica::HandleError(const sim::Envelope& env) {
  // Verifier ERROR(missing request) after a leader crash lost in-flight
  // transactions (Fig. 4 line 12): the current leader re-proposes the
  // attached ⟨T⟩C; duplicates are filtered by seen_txns_.
  const auto* msg = MessageAs<ErrorMsg>(env, MsgKind::kError);
  if (msg == nullptr || !msg->has_txn) return;
  if (IsLeader()) {
    SubmitTransaction(msg->txn);
    return;
  }
  // Followers keep the stuck transaction as stuck-work *evidence*: it
  // arms the leader-liveness check (a dead leader produces no Accepts to
  // drain it) and seeds the propose queue if this node takes over. It is
  // also forwarded so a live-but-unaware leader can propose it.
  if (!seen_txns_.contains(msg->txn.id)) {
    seen_txns_.insert(msg->txn.id);
    pending_.push_back(msg->txn);
  }
  // (Re-)arm the liveness check — a no-op when already armed; repeated
  // ERRORs for known-stuck txns still restore the check after e.g. a
  // crash window let it lapse.
  ScheduleLeaderCheck();
  auto fwd = std::make_shared<ClientRequestMsg>(id());
  fwd->txn = msg->txn;
  net_->Send(id(), LeaderOf(ballot_), fwd, fwd->WireSize());
}

void MultiPaxosReplica::SubmitTransaction(const workload::Transaction& txn) {
  if (seen_txns_.contains(txn.id)) return;
  seen_txns_.insert(txn.id);
  pending_.push_back(txn);
  MaybeProposeBatch();
}

void MultiPaxosReplica::ScheduleBatchFlush() {
  if (batch_flush_timer_ != 0 || pending_.empty()) return;
  batch_flush_timer_ = sim_->Schedule(config_.batch_timeout, [this]() {
    batch_flush_timer_ = 0;
    if (crashed_ || !IsLeader() || phase1_pending_ || pending_.empty()) {
      return;
    }
    size_t take = std::min(pending_.size(), config_.batch_size);
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    ProposeBatch(std::move(batch));
    MaybeProposeBatch();
  });
}

void MultiPaxosReplica::MaybeProposeBatch() {
  if (!IsLeader() || phase1_pending_) return;
  size_t inflight = 0;
  for (const auto& [slot, state] : slots_) {
    if (!state.committed) ++inflight;
  }
  while (pending_.size() >= config_.batch_size &&
         inflight < config_.pipeline_width) {
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + config_.batch_size);
    pending_.erase(pending_.begin(), pending_.begin() + config_.batch_size);
    ProposeBatch(std::move(batch));
    ++inflight;
  }
  ScheduleBatchFlush();
}

void MultiPaxosReplica::ProposeBatch(workload::TransactionBatch batch) {
  ProposeAtSlot(next_slot_++, workload::ShareBatch(std::move(batch)));
}

void MultiPaxosReplica::ProposeAtSlot(SeqNum slot_num,
                                      workload::BatchPtr batch) {
  Slot& slot = slots_[slot_num];
  slot.batch = std::move(batch);
  slot.digest = slot.batch->Hash();
  slot.accepted.clear();
  slot.accepted.insert(id());
  slot.committed = false;
  accepted_log_[slot_num] = {ballot_, slot.batch};
  slot_frontier_ = std::max(slot_frontier_, slot_num);

  auto msg = std::make_shared<PaxosAcceptMsg>(id());
  msg->ballot = ballot_;
  msg->slot = slot_num;
  msg->batch = slot.batch;
  msg->digest = slot.digest;
  msg->committed_upto = commit_frontier_;
  for (ActorId peer : peers_) {
    if (peer == id()) continue;
    net_->Send(id(), peer, msg, msg->WireSize());
  }
}

void MultiPaxosReplica::HandleAccept(const sim::Envelope& env) {
  const auto* msg = MessageAs<PaxosAcceptMsg>(env, MsgKind::kPaxosAccept);
  if (msg == nullptr) return;
  if (msg->ballot < ballot_) return;  // Stale (pre-failover) leader.
  if (env.from != LeaderOf(msg->ballot)) return;
  if (msg->ballot > ballot_) {
    // Adopt the higher ballot (a failover happened while we were dark).
    // A phase-1 read we were running under the older ballot is moot.
    ballot_ = msg->ballot;
    view_ = msg->ballot - 1;
    phase1_pending_ = false;
    phase1_promises_.clear();
    phase1_merged_.clear();
  }
  last_leader_activity_ = sim_->now();
  // The leader is alive and proposing: drain any stuck-work evidence it
  // just covered.
  if (!pending_.empty()) {
    for (const workload::Transaction& txn : msg->batch->txns) {
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->id == txn.id) {
          pending_.erase(it);
          break;
        }
      }
    }
  }
  // Acceptor: record the highest-ballot value and acknowledge.
  AcceptedValue& entry = accepted_log_[msg->slot];
  if (msg->ballot >= entry.ballot) {
    entry.ballot = msg->ballot;
    entry.batch = msg->batch;
  }
  slot_frontier_ = std::max(slot_frontier_, msg->slot);
  commit_frontier_ = std::max(commit_frontier_, msg->committed_upto);
  auto reply = std::make_shared<PaxosAcceptedMsg>(id());
  reply->ballot = msg->ballot;
  reply->slot = msg->slot;
  reply->digest = msg->digest;
  net_->Send(id(), env.from, reply, reply->WireSize());
}

void MultiPaxosReplica::HandleAccepted(const sim::Envelope& env) {
  const auto* msg = MessageAs<PaxosAcceptedMsg>(env, MsgKind::kPaxosAccepted);
  if (msg == nullptr) return;
  if (!IsLeader() || msg->ballot != ballot_) return;
  auto it = slots_.find(msg->slot);
  if (it == slots_.end() || it->second.committed) return;
  if (msg->digest != it->second.digest) return;
  it->second.accepted.insert(env.from);
  if (it->second.accepted.size() >= Majority()) {
    it->second.committed = true;
    ++committed_batches_;
    committed_txns_ += it->second.batch->txns.size();
    last_leader_activity_ = sim_->now();
    // Advance the contiguous commit frontier (commits may finish out of
    // order under pipelining).
    while (true) {
      auto next = slots_.find(commit_frontier_ + 1);
      if (next == slots_.end() || !next->second.committed) break;
      ++commit_frontier_;
    }
    if (commit_cb_) {
      crypto::CommitCertificate cert;  // CFT: no signatures needed.
      cert.seq = msg->slot;
      cert.digest = it->second.digest;
      commit_cb_(msg->slot, view_, it->second.batch, cert);
    }
    MaybeProposeBatch();
  }
}

// ---------------------------------------------------------------------------
// Leader failover.
// ---------------------------------------------------------------------------

void MultiPaxosReplica::ScheduleLeaderCheck() {
  // Armed only while stuck-work evidence is queued at a follower — the
  // sole state OnLeaderCheck can act on — so idle/leader/crashed
  // replicas add no recurring events to the loop.
  if (leader_check_armed_ || IsLeader() || pending_.empty()) return;
  leader_check_armed_ = true;
  sim_->Schedule(config_.view_change_timeout,
                 [this]() { OnLeaderCheck(); });
}

void MultiPaxosReplica::OnLeaderCheck() {
  leader_check_armed_ = false;
  if (crashed_ || IsLeader()) return;
  // Silence alone must not rotate leadership (an idle system is fine);
  // silence *while stuck work is evidenced* (ERROR-carried transactions
  // that no Accept has covered) is what indicts the leader.
  if (pending_.empty()) return;
  ScheduleLeaderCheck();
  if (sim_->now() - last_leader_activity_ < config_.view_change_timeout) {
    return;
  }
  ++view_;
  ballot_ = view_ + 1;
  ++view_changes_;
  last_leader_activity_ = sim_->now();
  if (IsLeader()) {
    TakeOverLeadership();
  } else {
    // Hand the evidence to whoever the new leader is; it stays queued
    // here until an Accept proves it was proposed.
    for (const workload::Transaction& txn : pending_) {
      auto fwd = std::make_shared<ClientRequestMsg>(id());
      fwd->txn = txn;
      net_->Send(id(), LeaderOf(ballot_), fwd, fwd->WireSize());
    }
  }
}

void MultiPaxosReplica::TakeOverLeadership() {
  // Phase-1 majority read: ask every peer for its highest-ballot
  // accepted suffix above the commit watermark before proposing
  // anything under the new ballot. Our own log is the first promise.
  phase1_pending_ = true;
  phase1_ballot_ = ballot_;
  phase1_promises_.clear();
  phase1_promises_.insert(id());
  phase1_merged_.clear();
  for (auto it = accepted_log_.upper_bound(commit_frontier_);
       it != accepted_log_.end(); ++it) {
    phase1_merged_[it->first] = it->second;
  }
  auto msg = std::make_shared<PaxosPrepareMsg>(id());
  msg->ballot = ballot_;
  msg->from_slot = commit_frontier_ + 1;
  for (ActorId peer : peers_) {
    if (peer == id()) continue;
    net_->Send(id(), peer, msg, msg->WireSize());
  }
  if (peers_.size() == 1 || Majority() == 1) {
    FinishPhaseOne();
    return;
  }
  // Re-broadcast if a majority never answers (crashed acceptors may
  // recover later); abandoned automatically when a higher ballot shows
  // up or the read completes.
  if (!phase1_retry_armed_) {
    phase1_retry_armed_ = true;
    sim_->Schedule(config_.view_change_timeout, [this]() {
      phase1_retry_armed_ = false;
      if (crashed_ || !phase1_pending_ || phase1_ballot_ != ballot_) return;
      TakeOverLeadership();
    });
  }
}

void MultiPaxosReplica::HandlePrepare(const sim::Envelope& env) {
  const auto* msg = MessageAs<PaxosPrepareMsg>(env, MsgKind::kPaxosPrepare);
  if (msg == nullptr) return;
  if (msg->ballot < ballot_) return;  // Stale candidate; no promise.
  if (env.from != LeaderOf(msg->ballot)) return;
  if (msg->ballot > ballot_) {
    ballot_ = msg->ballot;
    view_ = msg->ballot - 1;
    phase1_pending_ = false;  // Someone else won the ballot race.
    phase1_promises_.clear();
    phase1_merged_.clear();
  }
  last_leader_activity_ = sim_->now();
  auto reply = std::make_shared<PaxosPromiseMsg>(id());
  reply->ballot = msg->ballot;
  reply->commit_frontier = commit_frontier_;
  for (auto it = accepted_log_.lower_bound(msg->from_slot);
       it != accepted_log_.end(); ++it) {
    reply->entries.push_back({it->first, it->second.ballot,
                              it->second.batch});
  }
  net_->Send(id(), env.from, reply, reply->WireSize());
}

void MultiPaxosReplica::HandlePromise(const sim::Envelope& env) {
  const auto* msg = MessageAs<PaxosPromiseMsg>(env, MsgKind::kPaxosPromise);
  if (msg == nullptr) return;
  if (!phase1_pending_ || msg->ballot != phase1_ballot_ ||
      msg->ballot != ballot_) {
    return;
  }
  commit_frontier_ = std::max(commit_frontier_, msg->commit_frontier);
  for (const auto& entry : msg->entries) {
    AcceptedValue& merged = phase1_merged_[entry.slot];
    if (entry.ballot >= merged.ballot) {
      merged.ballot = entry.ballot;
      merged.batch = entry.batch;
    }
  }
  phase1_promises_.insert(env.from);
  if (phase1_promises_.size() >= Majority()) FinishPhaseOne();
}

void MultiPaxosReplica::FinishPhaseOne() {
  phase1_pending_ = false;
  // Re-propose the merged highest-ballot value for every slot above the
  // commit watermark, plugging unwitnessed holes with empty no-op
  // batches so the verifier's k_max cursor can advance past them. The
  // piggybacked frontier keeps a late-run failover from re-driving the
  // whole history. Transactions that lived only in the dead leader's
  // memory come back via the verifier's ERROR path.
  SeqNum frontier = slot_frontier_;
  for (const auto& [slot, value] : phase1_merged_) {
    accepted_log_[slot] = value;
    frontier = std::max(frontier, slot);
  }
  slot_frontier_ = std::max(slot_frontier_, frontier);
  next_slot_ = std::max(next_slot_, slot_frontier_ + 1);
  for (SeqNum s = commit_frontier_ + 1; s < next_slot_; ++s) {
    auto committed_it = slots_.find(s);
    if (committed_it != slots_.end() && committed_it->second.committed) {
      continue;
    }
    auto witnessed = accepted_log_.find(s);
    workload::BatchPtr batch = workload::EmptyBatch();
    if (witnessed != accepted_log_.end()) {
      batch = witnessed->second.batch;
    }
    ProposeAtSlot(s, std::move(batch));
  }
  phase1_merged_.clear();
  phase1_promises_.clear();
  MaybeProposeBatch();
}

NoShimCoordinator::NoShimCoordinator(ActorId id, const ShimConfig& config,
                                     sim::Simulator* sim, sim::Network* net)
    : Actor(id, "noshim"), config_(config), sim_(sim), net_(net) {}

void NoShimCoordinator::OnMessage(const sim::Envelope& env) {
  const auto* msg = MessageAs<ClientRequestMsg>(env, MsgKind::kClientRequest);
  if (msg == nullptr) return;
  SubmitTransaction(msg->txn);
}

void NoShimCoordinator::SubmitTransaction(const workload::Transaction& txn) {
  pending_.push_back(txn);
  MaybeFlush();
}

void NoShimCoordinator::ScheduleBatchFlush() {
  if (batch_flush_timer_ != 0 || pending_.empty()) return;
  batch_flush_timer_ = sim_->Schedule(config_.batch_timeout, [this]() {
    batch_flush_timer_ = 0;
    if (pending_.empty()) return;
    size_t take = std::min(pending_.size(), config_.batch_size);
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    Emit(std::move(batch));
    MaybeFlush();
  });
}

void NoShimCoordinator::MaybeFlush() {
  while (pending_.size() >= config_.batch_size) {
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + config_.batch_size);
    pending_.erase(pending_.begin(), pending_.begin() + config_.batch_size);
    Emit(std::move(batch));
  }
  ScheduleBatchFlush();
}

void NoShimCoordinator::Emit(workload::TransactionBatch batch) {
  SeqNum seq = next_seq_++;
  ++committed_batches_;
  committed_txns_ += batch.txns.size();
  if (commit_cb_) {
    workload::BatchPtr shared = workload::ShareBatch(std::move(batch));
    crypto::CommitCertificate cert;
    cert.seq = seq;
    cert.digest = shared->Hash();
    commit_cb_(seq, 0, shared, cert);
  }
}

}  // namespace sbft::shim
