#include "shim/paxos_replica.h"

#include <algorithm>

namespace sbft::shim {

MultiPaxosReplica::MultiPaxosReplica(ActorId id, uint32_t index,
                                     const ShimConfig& config,
                                     std::vector<ActorId> peers,
                                     sim::Simulator* sim, sim::Network* net)
    : Actor(id, "paxos-" + std::to_string(index)),
      config_(config),
      index_(index),
      peers_(std::move(peers)),
      sim_(sim),
      net_(net) {}

void MultiPaxosReplica::OnMessage(const sim::Envelope& env) {
  const auto* base = static_cast<const Message*>(env.message.get());
  if (base == nullptr) return;
  switch (base->kind) {
    case MsgKind::kClientRequest:
      HandleClientRequest(env);
      break;
    case MsgKind::kPaxosAccept:
      HandleAccept(env);
      break;
    case MsgKind::kPaxosAccepted:
      HandleAccepted(env);
      break;
    default:
      break;
  }
}

void MultiPaxosReplica::HandleClientRequest(const sim::Envelope& env) {
  const auto* msg = MessageAs<ClientRequestMsg>(env, MsgKind::kClientRequest);
  if (msg == nullptr) return;
  if (!IsLeader()) {
    net_->Send(id(), peers_[0], env.message, msg->WireSize());
    return;
  }
  SubmitTransaction(msg->txn);
}

void MultiPaxosReplica::SubmitTransaction(const workload::Transaction& txn) {
  if (seen_txns_.contains(txn.id)) return;
  seen_txns_.insert(txn.id);
  pending_.push_back(txn);
  MaybeProposeBatch();
}

void MultiPaxosReplica::ScheduleBatchFlush() {
  if (batch_flush_timer_ != 0 || pending_.empty()) return;
  batch_flush_timer_ = sim_->Schedule(config_.batch_timeout, [this]() {
    batch_flush_timer_ = 0;
    if (!IsLeader() || pending_.empty()) return;
    size_t take = std::min(pending_.size(), config_.batch_size);
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    ProposeBatch(std::move(batch));
    MaybeProposeBatch();
  });
}

void MultiPaxosReplica::MaybeProposeBatch() {
  if (!IsLeader()) return;
  size_t inflight = 0;
  for (const auto& [slot, state] : slots_) {
    if (!state.committed) ++inflight;
  }
  while (pending_.size() >= config_.batch_size &&
         inflight < config_.pipeline_width) {
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + config_.batch_size);
    pending_.erase(pending_.begin(), pending_.begin() + config_.batch_size);
    ProposeBatch(std::move(batch));
    ++inflight;
  }
  ScheduleBatchFlush();
}

void MultiPaxosReplica::ProposeBatch(workload::TransactionBatch batch) {
  SeqNum slot_num = next_slot_++;
  Slot& slot = slots_[slot_num];
  slot.batch = std::move(batch);
  slot.digest = slot.batch.Hash();
  slot.accepted.insert(id());

  auto msg = std::make_shared<PaxosAcceptMsg>(id());
  msg->ballot = ballot_;
  msg->slot = slot_num;
  msg->batch = slot.batch;
  msg->digest = slot.digest;
  for (ActorId peer : peers_) {
    if (peer == id()) continue;
    net_->Send(id(), peer, msg, msg->WireSize());
  }
}

void MultiPaxosReplica::HandleAccept(const sim::Envelope& env) {
  const auto* msg = MessageAs<PaxosAcceptMsg>(env, MsgKind::kPaxosAccept);
  if (msg == nullptr) return;
  if (env.from != peers_[0]) return;  // Only the stable leader proposes.
  // Acceptor: record and acknowledge.
  auto reply = std::make_shared<PaxosAcceptedMsg>(id());
  reply->ballot = msg->ballot;
  reply->slot = msg->slot;
  reply->digest = msg->digest;
  net_->Send(id(), env.from, reply, reply->WireSize());
}

void MultiPaxosReplica::HandleAccepted(const sim::Envelope& env) {
  const auto* msg = MessageAs<PaxosAcceptedMsg>(env, MsgKind::kPaxosAccepted);
  if (msg == nullptr) return;
  if (!IsLeader()) return;
  auto it = slots_.find(msg->slot);
  if (it == slots_.end() || it->second.committed) return;
  if (msg->digest != it->second.digest) return;
  it->second.accepted.insert(env.from);
  if (it->second.accepted.size() >= Majority()) {
    it->second.committed = true;
    ++committed_batches_;
    committed_txns_ += it->second.batch.txns.size();
    if (commit_cb_) {
      crypto::CommitCertificate cert;  // CFT: no signatures needed.
      cert.seq = msg->slot;
      cert.digest = it->second.digest;
      commit_cb_(msg->slot, 0, it->second.batch, cert);
    }
    MaybeProposeBatch();
  }
}

NoShimCoordinator::NoShimCoordinator(ActorId id, const ShimConfig& config,
                                     sim::Simulator* sim, sim::Network* net)
    : Actor(id, "noshim"), config_(config), sim_(sim), net_(net) {}

void NoShimCoordinator::OnMessage(const sim::Envelope& env) {
  const auto* msg = MessageAs<ClientRequestMsg>(env, MsgKind::kClientRequest);
  if (msg == nullptr) return;
  SubmitTransaction(msg->txn);
}

void NoShimCoordinator::SubmitTransaction(const workload::Transaction& txn) {
  pending_.push_back(txn);
  MaybeFlush();
}

void NoShimCoordinator::ScheduleBatchFlush() {
  if (batch_flush_timer_ != 0 || pending_.empty()) return;
  batch_flush_timer_ = sim_->Schedule(config_.batch_timeout, [this]() {
    batch_flush_timer_ = 0;
    if (pending_.empty()) return;
    size_t take = std::min(pending_.size(), config_.batch_size);
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    Emit(std::move(batch));
    MaybeFlush();
  });
}

void NoShimCoordinator::MaybeFlush() {
  while (pending_.size() >= config_.batch_size) {
    workload::TransactionBatch batch;
    batch.txns.assign(pending_.begin(), pending_.begin() + config_.batch_size);
    pending_.erase(pending_.begin(), pending_.begin() + config_.batch_size);
    Emit(std::move(batch));
  }
  ScheduleBatchFlush();
}

void NoShimCoordinator::Emit(workload::TransactionBatch batch) {
  SeqNum seq = next_seq_++;
  ++committed_batches_;
  committed_txns_ += batch.txns.size();
  if (commit_cb_) {
    crypto::CommitCertificate cert;
    cert.seq = seq;
    cert.digest = batch.Hash();
    commit_cb_(seq, 0, batch, cert);
  }
}

}  // namespace sbft::shim
