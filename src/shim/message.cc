#include "shim/message.h"

#include <cassert>
#include <cstring>

#include "crypto/sha256.h"

namespace sbft::shim {

namespace {

/// Appends a packed wire struct verbatim.
template <typename H>
void PutPacked(Encoder* enc, const H& h) {
  enc->PutRaw(reinterpret_cast<const uint8_t*>(&h), sizeof(h));
}

wire::MsgHeader HeaderFor(const Message& m) {
  wire::MsgHeader h{};
  h.kind.set(static_cast<uint8_t>(m.kind));
  h.sender.set(m.sender);
  return h;
}

/// Constructs a packed header with the common MsgHeader fields filled.
template <typename H>
H PackedFor(const Message& m) {
  H h{};
  h.hdr = HeaderFor(m);
  return h;
}

void CopyDigest(wire::DigestField* dst, const crypto::Digest& src) {
  std::memcpy(dst->mutable_data(), src.data(), crypto::Digest::kSize);
}

// Streaming twins of the Encoder Put* calls, for digests computed
// without materializing a buffer (MatchKey).
void HashU64(crypto::Sha256* h, uint64_t v) {
  uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<uint8_t>(v >> (8 * i));
  h->Update(le, sizeof(le));
}

void HashVarint(crypto::Sha256* h, uint64_t v) {
  uint8_t buf[10];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<uint8_t>(v);
  h->Update(buf, n);
}

void HashSized(crypto::Sha256* h, const uint8_t* data, size_t len) {
  HashVarint(h, len);
  h->Update(data, len);
}

void HashBytes(crypto::Sha256* h, const Bytes& b) {
  HashSized(h, b.data(), b.size());
}

void HashString(crypto::Sha256* h, const std::string& s) {
  HashSized(h, reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kClientRequest:
      return "CLIENT_REQUEST";
    case MsgKind::kPrePrepare:
      return "PREPREPARE";
    case MsgKind::kPrepare:
      return "PREPARE";
    case MsgKind::kCommit:
      return "COMMIT";
    case MsgKind::kExecute:
      return "EXECUTE";
    case MsgKind::kVerify:
      return "VERIFY";
    case MsgKind::kResponse:
      return "RESPONSE";
    case MsgKind::kError:
      return "ERROR";
    case MsgKind::kReplace:
      return "REPLACE";
    case MsgKind::kAck:
      return "ACK";
    case MsgKind::kViewChange:
      return "VIEWCHANGE";
    case MsgKind::kNewView:
      return "NEWVIEW";
    case MsgKind::kCheckpoint:
      return "CHECKPOINT";
    case MsgKind::kStorageRead:
      return "STORAGE_READ";
    case MsgKind::kStorageReadReply:
      return "STORAGE_READ_REPLY";
    case MsgKind::kPaxosAccept:
      return "PAXOS_ACCEPT";
    case MsgKind::kPaxosAccepted:
      return "PAXOS_ACCEPTED";
    case MsgKind::kLinearVote:
      return "LINEAR_VOTE";
    case MsgKind::kLinearCert:
      return "LINEAR_CERT";
    case MsgKind::kShardPrepareVote:
      return "SHARD_PREPARE_VOTE";
    case MsgKind::kShardCommitDecision:
      return "SHARD_COMMIT_DECISION";
    case MsgKind::kShardVoteCert:
      return "SHARD_VOTE_CERT";
    case MsgKind::kCoordAppend:
      return "COORD_APPEND";
    case MsgKind::kCoordAck:
      return "COORD_ACK";
    case MsgKind::kCoordSyncRequest:
      return "COORD_SYNC_REQUEST";
    case MsgKind::kCoordSyncReply:
      return "COORD_SYNC_REPLY";
    case MsgKind::kCoordRedirect:
      return "COORD_REDIRECT";
    case MsgKind::kPaxosPrepare:
      return "PAXOS_PREPARE";
    case MsgKind::kPaxosPromise:
      return "PAXOS_PROMISE";
  }
  return "UNKNOWN";
}

Message::~Message() {
  if (serialized_ready_) ReleasePooledBuffer(std::move(serialized_));
}

const Bytes& Message::Serialized() const {
  if (!serialized_ready_) {
    Encoder enc(AcquirePooledBuffer());
    enc.Reserve(sizeof(wire::MsgHeader) + PayloadWireBytes());
    BuildWire(&enc);
    assert(enc.size() == sizeof(wire::MsgHeader) + PayloadWireBytes() &&
           "BuildWire and PayloadWireBytes disagree");
    serialized_ = enc.TakeBuffer();
    serialized_ready_ = true;
  }
  return serialized_;
}

const crypto::Digest& Message::WireDigest() const {
  if (!wire_digest_ready_) {
    wire_digest_ = crypto::Sha256::Hash(Serialized());
    wire_digest_ready_ = true;
  }
  return wire_digest_;
}

Bytes ClientRequestMsg::SigningBytes(const workload::Transaction& txn) {
  Encoder enc;
  enc.PutString("sbft-client-request");
  txn.EncodeTo(&enc);
  return enc.TakeBuffer();
}

size_t ClientRequestMsg::PayloadWireBytes() const {
  return txn.WireSize() + SizedLen(client_sig.size());
}

void ClientRequestMsg::BuildWire(Encoder* enc) const {
  // The ClientRequestHeader covers the transaction's fixed head, whose
  // flags byte depends on the txn contents; the txn's own encoder keeps
  // authority over that layout, so the header here is parse-side only.
  PutPacked(enc, HeaderFor(*this));
  txn.EncodeTo(enc);
  enc->PutBytes(client_sig);
}

size_t PrePrepareMsg::PayloadWireBytes() const {
  return 8 + 8 + batch->WireSize() + crypto::Digest::kSize;
}

void PrePrepareMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::PrePrepareHeader>(*this);
  h.view.set(view);
  h.seq.set(seq);
  PutPacked(enc, h);
  batch->EncodeTo(enc);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
}

size_t PrepareMsg::PayloadWireBytes() const {
  return 8 + 8 + crypto::Digest::kSize;
}

void PrepareMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::PrepareHeader>(*this);
  h.view.set(view);
  h.seq.set(seq);
  CopyDigest(&h.digest, digest);
  PutPacked(enc, h);
}

size_t CommitMsg::PayloadWireBytes() const {
  return 8 + 8 + crypto::Digest::kSize + SizedLen(ds.size());
}

void CommitMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CommitHeader>(*this);
  h.view.set(view);
  h.seq.set(seq);
  CopyDigest(&h.digest, digest);
  PutPacked(enc, h);
  enc->PutBytes(ds);
}

Bytes ExecuteMsg::SigningBytes(ViewNum view, SeqNum seq,
                               const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("sbft-execute");
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutRaw(digest.data(), crypto::Digest::kSize);
  return enc.TakeBuffer();
}

size_t ExecuteMsg::PayloadWireBytes() const {
  return 8 + 8 + batch->WireSize() + crypto::Digest::kSize +
         cert.WireSize() + SizedLen(spawner_sig.size());
}

void ExecuteMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ExecuteHeader>(*this);
  h.view.set(view);
  h.seq.set(seq);
  PutPacked(enc, h);
  batch->EncodeTo(enc);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  cert.EncodeTo(enc);
  enc->PutBytes(spawner_sig);
}

Bytes VerifyMsg::SigningBytes(ViewNum view, SeqNum seq,
                              const crypto::Digest& batch_digest,
                              const storage::RwSet& rw, const Bytes& result) {
  Encoder enc;
  enc.PutString("sbft-verify");
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutRaw(batch_digest.data(), crypto::Digest::kSize);
  rw.EncodeTo(&enc);
  enc.PutBytes(result);
  return enc.TakeBuffer();
}

crypto::Digest VerifyMsg::MatchKey(bool include_rw) const {
  // Streamed straight into SHA-256 — no scratch buffer. The byte
  // sequence matches the historical encoder-built one.
  crypto::Sha256 h;
  HashU64(&h, seq);
  h.Update(batch_digest.data(), crypto::Digest::kSize);
  if (include_rw) {
    HashVarint(&h, rw.reads.size());
    for (const storage::ReadEntry& r : rw.reads) {
      HashString(&h, r.key);
      HashU64(&h, r.version);
    }
    HashVarint(&h, rw.writes.size());
    for (const storage::WriteEntry& w : rw.writes) {
      HashString(&h, w.key);
      HashBytes(&h, w.value);
    }
  } else {
    // Writes must still agree — they are what the verifier applies.
    HashVarint(&h, rw.writes.size());
    for (const storage::WriteEntry& w : rw.writes) {
      HashString(&h, w.key);
      HashBytes(&h, w.value);
    }
  }
  HashBytes(&h, result);
  return h.Finish();
}

size_t VerifyMsg::PayloadWireBytes() const {
  size_t n = 8 + 8 + crypto::Digest::kSize + cert.WireSize() + rw.WireSize();
  n += VarintLen(txn_rws.size());
  for (const storage::RwSet& txn_rw : txn_rws) n += txn_rw.WireSize();
  n += VarintLen(txn_refs.size()) + (8 + 4) * txn_refs.size();
  n += SizedLen(result.size()) + SizedLen(executor_sig.size());
  size_t fragments = 0;
  size_t fragment_bytes = 0;
  for (size_t i = 0; i < txn_refs.size(); ++i) {
    if (txn_refs[i].global_id == 0) continue;
    ++fragments;
    fragment_bytes += VarintLen(i) + 8 + 4;
  }
  if (fragments > 0) n += VarintLen(fragments) + fragment_bytes;
  return n;
}

void VerifyMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::VerifyHeader>(*this);
  h.view.set(view);
  h.seq.set(seq);
  CopyDigest(&h.batch_digest, batch_digest);
  PutPacked(enc, h);
  cert.EncodeTo(enc);
  rw.EncodeTo(enc);
  enc->PutVarint(txn_rws.size());
  for (const storage::RwSet& txn_rw : txn_rws) {
    txn_rw.EncodeTo(enc);
  }
  enc->PutVarint(txn_refs.size());
  for (const TxnRef& ref : txn_refs) {
    enc->PutU64(ref.id);
    enc->PutU32(ref.client);
  }
  enc->PutBytes(result);
  enc->PutBytes(executor_sig);
  // Fragment metadata rides in a trailing *indexed* section, emitted
  // only when at least one ref is a cross-shard fragment: pre-sharding
  // messages keep their exact wire bytes, and carrying the ref index
  // explicitly keeps the encoding injective (a per-ref conditional
  // field would let two different ref lists collide on the same bytes).
  size_t fragments = 0;
  for (const TxnRef& ref : txn_refs) {
    if (ref.global_id != 0) ++fragments;
  }
  if (fragments > 0) {
    enc->PutVarint(fragments);
    for (size_t i = 0; i < txn_refs.size(); ++i) {
      const TxnRef& ref = txn_refs[i];
      if (ref.global_id == 0) continue;
      enc->PutVarint(i);
      enc->PutU64(ref.global_id);
      enc->PutU32(ref.coordinator);
    }
  }
}

size_t ResponseMsg::PayloadWireBytes() const {
  return 8 + 4 + 8 + crypto::Digest::kSize + SizedLen(result.size()) + 1;
}

void ResponseMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ResponseHeader>(*this);
  h.txn_id.set(txn_id);
  h.client.set(client);
  h.seq.set(seq);
  CopyDigest(&h.batch_digest, batch_digest);
  PutPacked(enc, h);
  enc->PutBytes(result);
  enc->PutBool(aborted);
}

size_t ErrorMsg::PayloadWireBytes() const {
  return 1 + 8 + crypto::Digest::kSize + 1 + (has_txn ? txn.WireSize() : 0);
}

void ErrorMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ErrorHeader>(*this);
  h.reason.set(static_cast<uint8_t>(reason));
  h.kmax.set(kmax);
  CopyDigest(&h.txn_digest, txn_digest);
  h.has_txn.set(has_txn);
  PutPacked(enc, h);
  if (has_txn) {
    txn.EncodeTo(enc);
  }
}

size_t ReplaceMsg::PayloadWireBytes() const { return crypto::Digest::kSize; }

void ReplaceMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ReplaceHeader>(*this);
  CopyDigest(&h.txn_digest, txn_digest);
  PutPacked(enc, h);
}

size_t AckMsg::PayloadWireBytes() const {
  return 1 + 8 + crypto::Digest::kSize;
}

void AckMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::AckHeader>(*this);
  h.has_seq.set(has_seq);
  h.kmax.set(kmax);
  CopyDigest(&h.txn_digest, txn_digest);
  PutPacked(enc, h);
}

void PreparedProof::EncodeTo(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  batch->EncodeTo(enc);
}

Status PreparedProof::DecodeFrom(Decoder* dec, PreparedProof* out) {
  Status st = dec->GetU64(&out->view);
  if (!st.ok()) return st;
  st = dec->GetU64(&out->seq);
  if (!st.ok()) return st;
  Bytes buf(crypto::Digest::kSize);
  for (size_t i = 0; i < crypto::Digest::kSize; ++i) {
    st = dec->GetU8(&buf[i]);
    if (!st.ok()) return st;
  }
  out->digest = crypto::Digest::FromRaw(buf.data());
  workload::TransactionBatch batch;
  st = workload::TransactionBatch::DecodeFrom(dec, &batch);
  if (!st.ok()) return st;
  out->batch = workload::ShareBatch(std::move(batch));
  return Status::Ok();
}

size_t PreparedProof::WireSize() const {
  return 8 + 8 + crypto::Digest::kSize + batch->WireSize();
}

Bytes ViewChangeMsg::SigningBytes(ViewNum new_view, SeqNum stable_seq) {
  Encoder enc;
  enc.PutString("sbft-viewchange");
  enc.PutU64(new_view);
  enc.PutU64(stable_seq);
  return enc.TakeBuffer();
}

size_t ViewChangeMsg::PayloadWireBytes() const {
  size_t n = 8 + 8 + VarintLen(prepared.size());
  for (const PreparedProof& p : prepared) n += p.WireSize();
  return n + SizedLen(ds.size());
}

void ViewChangeMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ViewChangeHeader>(*this);
  h.new_view.set(new_view);
  h.stable_seq.set(stable_seq);
  PutPacked(enc, h);
  enc->PutVarint(prepared.size());
  for (const PreparedProof& p : prepared) {
    p.EncodeTo(enc);
  }
  enc->PutBytes(ds);
}

Bytes NewViewMsg::SigningBytes(ViewNum view, size_t reproposal_count) {
  Encoder enc;
  enc.PutString("sbft-newview");
  enc.PutU64(view);
  enc.PutU64(reproposal_count);
  return enc.TakeBuffer();
}

size_t NewViewMsg::PayloadWireBytes() const {
  size_t n = 8 + VarintLen(view_change_senders.size()) +
             4 * view_change_senders.size() + VarintLen(reproposals.size());
  for (const PreparedProof& p : reproposals) n += p.WireSize();
  return n + SizedLen(ds.size());
}

void NewViewMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::NewViewHeader>(*this);
  h.view.set(view);
  PutPacked(enc, h);
  enc->PutVarint(view_change_senders.size());
  for (ActorId id : view_change_senders) {
    enc->PutU32(id);
  }
  enc->PutVarint(reproposals.size());
  for (const PreparedProof& p : reproposals) {
    p.EncodeTo(enc);
  }
  enc->PutBytes(ds);
}

size_t CheckpointMsg::PayloadWireBytes() const {
  size_t n = 8 + crypto::Digest::kSize + VarintLen(certs.size());
  for (const crypto::CompactCertificate& c : certs) n += c.WireSize();
  n += VarintLen(batches.size());
  for (const PreparedProof& p : batches) n += p.WireSize();
  return n;
}

void CheckpointMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CheckpointHeader>(*this);
  h.upto_seq.set(upto_seq);
  CopyDigest(&h.cert_log_root, cert_log_root);
  PutPacked(enc, h);
  enc->PutVarint(certs.size());
  for (const crypto::CompactCertificate& c : certs) {
    c.EncodeTo(enc);
  }
  enc->PutVarint(batches.size());
  for (const PreparedProof& p : batches) {
    p.EncodeTo(enc);
  }
}

size_t StorageReadMsg::PayloadWireBytes() const {
  size_t n = 8 + VarintLen(keys.size());
  for (const std::string& k : keys) n += SizedLen(k.size());
  return n;
}

void StorageReadMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::StorageReadHeader>(*this);
  h.request_id.set(request_id);
  PutPacked(enc, h);
  enc->PutVarint(keys.size());
  for (const std::string& k : keys) {
    enc->PutString(k);
  }
}

size_t StorageReadReplyMsg::PayloadWireBytes() const {
  size_t n = 8 + VarintLen(items.size());
  for (const Item& item : items) {
    n += SizedLen(item.key.size()) + SizedLen(item.value.size()) + 8 + 1;
  }
  return n;
}

void StorageReadReplyMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::StorageReadReplyHeader>(*this);
  h.request_id.set(request_id);
  PutPacked(enc, h);
  enc->PutVarint(items.size());
  for (const Item& item : items) {
    enc->PutString(item.key);
    enc->PutBytes(item.value);
    enc->PutU64(item.version);
    enc->PutBool(item.found);
  }
}

size_t PaxosAcceptMsg::PayloadWireBytes() const {
  return 8 + 8 + batch->WireSize() + crypto::Digest::kSize + 8;
}

void PaxosAcceptMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::PaxosAcceptHeader>(*this);
  h.ballot.set(ballot);
  h.slot.set(slot);
  PutPacked(enc, h);
  batch->EncodeTo(enc);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  enc->PutU64(committed_upto);
}

size_t PaxosAcceptedMsg::PayloadWireBytes() const {
  return 8 + 8 + crypto::Digest::kSize;
}

void PaxosAcceptedMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::PaxosAcceptedHeader>(*this);
  h.ballot.set(ballot);
  h.slot.set(slot);
  CopyDigest(&h.digest, digest);
  PutPacked(enc, h);
}

Bytes LinearVoteMsg::PrepareSigningBytes(ViewNum view, SeqNum seq,
                                         const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("sbft-linear-prepare");
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutRaw(digest.data(), crypto::Digest::kSize);
  return enc.TakeBuffer();
}

size_t LinearVoteMsg::PayloadWireBytes() const {
  return 1 + 8 + 8 + crypto::Digest::kSize + SizedLen(ds.size());
}

void LinearVoteMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::LinearVoteHeader>(*this);
  h.phase.set(static_cast<uint8_t>(phase));
  h.view.set(view);
  h.seq.set(seq);
  CopyDigest(&h.digest, digest);
  PutPacked(enc, h);
  enc->PutBytes(ds);
}

size_t LinearCertMsg::PayloadWireBytes() const { return 1 + cert.WireSize(); }

void LinearCertMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::LinearCertHeader>(*this);
  h.phase.set(static_cast<uint8_t>(phase));
  PutPacked(enc, h);
  cert.EncodeTo(enc);
}

size_t ShardPrepareVoteMsg::PayloadWireBytes() const {
  size_t n = 8 + 4 + 8 + 1;
  if (has_meta) n += VarintLen(acked_cseqs.size()) + 8 * acked_cseqs.size();
  if (has_view) n += 8;
  return n;
}

void ShardPrepareVoteMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ShardPrepareVoteHeader>(*this);
  h.global_id.set(global_id);
  h.shard.set(shard);
  h.seq.set(seq);
  h.commit.set(commit);
  PutPacked(enc, h);
  // Watermark piggyback rides in a trailing section gated on has_meta,
  // mirroring the VerifyMsg fragment section: runs without the feature
  // keep their exact pre-watermark wire bytes (the golden scenario
  // digests pin message sizes through the transmission-delay model).
  if (has_meta) {
    enc->PutVarint(acked_cseqs.size());
    for (uint64_t cseq : acked_cseqs) {
      enc->PutU64(cseq);
    }
  }
  // View stamp: only a replicated coordinator group (replicas > 1) sets
  // has_view, so singleton runs keep byte-identical votes.
  if (has_view) enc->PutU64(coord_view);
}

size_t ShardVoteCertMsg::PayloadWireBytes() const {
  size_t n = cert.WireSize() + 1;
  if (has_meta) n += VarintLen(acked_cseqs.size()) + 8 * acked_cseqs.size();
  if (has_view) n += 8;
  return n;
}

void ShardVoteCertMsg::BuildWire(Encoder* enc) const {
  PutPacked(enc, PackedFor<wire::ShardVoteCertHeader>(*this));
  cert.EncodeTo(enc);
  enc->PutBool(has_meta);
  if (has_meta) {
    enc->PutVarint(acked_cseqs.size());
    for (uint64_t cseq : acked_cseqs) {
      enc->PutU64(cseq);
    }
  }
  if (has_view) enc->PutU64(coord_view);
}

size_t ShardCommitDecisionMsg::PayloadWireBytes() const {
  size_t n = 8 + 1;
  if (!proof.shares.empty()) n += proof.WireSize();
  if (has_meta) n += 16;
  if (has_view) n += 8 + 4;
  return n;
}

void ShardCommitDecisionMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::ShardCommitDecisionHeader>(*this);
  h.global_id.set(global_id);
  h.commit.set(commit);
  PutPacked(enc, h);
  // The quorum proof is a trailing section present only under
  // twopc_vote_certificates (an empty proof keeps legacy bytes), like
  // the has_meta watermark section after it.
  if (!proof.shares.empty()) proof.EncodeTo(enc);
  if (has_meta) {
    enc->PutU64(cseq);
    enc->PutU64(watermark);
  }
  // View stamp: set only by a replicated coordinator group, so the
  // singleton decision wire bytes (and golden digests) are untouched.
  if (has_view) {
    enc->PutU64(coord_view);
    enc->PutU32(coord_leader);
  }
}

size_t CoordAppendMsg::PayloadWireBytes() const {
  size_t n = sizeof(wire::CoordAppendHeader) - sizeof(wire::MsgHeader);
  n += VarintLen(shards.size()) + 4 * shards.size() + 1;
  if (!proof.shares.empty()) n += proof.WireSize();
  return n;
}

void CoordAppendMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CoordAppendHeader>(*this);
  h.view.set(view);
  h.append_id.set(append_id);
  h.entry.set(entry);
  h.global_id.set(global_id);
  h.commit.set(commit);
  h.cseq.set(cseq);
  h.watermark.set(watermark);
  h.client.set(client);
  PutPacked(enc, h);
  enc->PutVarint(shards.size());
  for (uint32_t s : shards) enc->PutU32(s);
  enc->PutBool(!proof.shares.empty());
  if (!proof.shares.empty()) proof.EncodeTo(enc);
}

size_t CoordAckMsg::PayloadWireBytes() const { return 8 + 8; }

void CoordAckMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CoordAckHeader>(*this);
  h.view.set(view);
  h.append_id.set(append_id);
  PutPacked(enc, h);
}

size_t CoordSyncRequestMsg::PayloadWireBytes() const { return 8; }

void CoordSyncRequestMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CoordSyncRequestHeader>(*this);
  h.view.set(view);
  PutPacked(enc, h);
}

size_t CoordSyncReplyMsg::PayloadWireBytes() const {
  size_t n = 8 + 8 + 8 + VarintLen(decisions.size());
  for (const DecisionEntry& d : decisions) {
    n += 8 + 1 + 8 + 8 + 1;
    if (!d.proof.shares.empty()) n += d.proof.WireSize();
  }
  n += VarintLen(launches.size());
  for (const LaunchEntry& l : launches) {
    n += 8 + 4 + VarintLen(l.shards.size()) + 4 * l.shards.size();
  }
  return n;
}

void CoordSyncReplyMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CoordSyncReplyHeader>(*this);
  h.view.set(view);
  h.next_cseq.set(next_cseq);
  h.watermark.set(watermark);
  PutPacked(enc, h);
  enc->PutVarint(decisions.size());
  for (const DecisionEntry& d : decisions) {
    enc->PutU64(d.global_id);
    enc->PutBool(d.commit);
    enc->PutU64(d.cseq);
    enc->PutU64(d.view);
    enc->PutBool(!d.proof.shares.empty());
    if (!d.proof.shares.empty()) d.proof.EncodeTo(enc);
  }
  enc->PutVarint(launches.size());
  for (const LaunchEntry& l : launches) {
    enc->PutU64(l.global_id);
    enc->PutU32(l.client);
    enc->PutVarint(l.shards.size());
    for (uint32_t s : l.shards) enc->PutU32(s);
  }
}

size_t CoordRedirectMsg::PayloadWireBytes() const { return 8 + 4; }

void CoordRedirectMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::CoordRedirectHeader>(*this);
  h.view.set(view);
  h.leader.set(leader);
  PutPacked(enc, h);
}

size_t PaxosPrepareMsg::PayloadWireBytes() const { return 8 + 8; }

void PaxosPrepareMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::PaxosPrepareHeader>(*this);
  h.ballot.set(ballot);
  h.from_slot.set(from_slot);
  PutPacked(enc, h);
}

size_t PaxosPromiseMsg::PayloadWireBytes() const {
  size_t n = 8 + 8 + VarintLen(entries.size());
  for (const AcceptedEntry& e : entries) n += 8 + 8 + e.batch->WireSize();
  return n;
}

void PaxosPromiseMsg::BuildWire(Encoder* enc) const {
  auto h = PackedFor<wire::PaxosPromiseHeader>(*this);
  h.ballot.set(ballot);
  h.commit_frontier.set(commit_frontier);
  PutPacked(enc, h);
  enc->PutVarint(entries.size());
  for (const AcceptedEntry& e : entries) {
    enc->PutU64(e.slot);
    enc->PutU64(e.ballot);
    e.batch->EncodeTo(enc);
  }
}

}  // namespace sbft::shim
