#include "shim/message.h"

#include "crypto/sha256.h"

namespace sbft::shim {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kClientRequest:
      return "CLIENT_REQUEST";
    case MsgKind::kPrePrepare:
      return "PREPREPARE";
    case MsgKind::kPrepare:
      return "PREPARE";
    case MsgKind::kCommit:
      return "COMMIT";
    case MsgKind::kExecute:
      return "EXECUTE";
    case MsgKind::kVerify:
      return "VERIFY";
    case MsgKind::kResponse:
      return "RESPONSE";
    case MsgKind::kError:
      return "ERROR";
    case MsgKind::kReplace:
      return "REPLACE";
    case MsgKind::kAck:
      return "ACK";
    case MsgKind::kViewChange:
      return "VIEWCHANGE";
    case MsgKind::kNewView:
      return "NEWVIEW";
    case MsgKind::kCheckpoint:
      return "CHECKPOINT";
    case MsgKind::kStorageRead:
      return "STORAGE_READ";
    case MsgKind::kStorageReadReply:
      return "STORAGE_READ_REPLY";
    case MsgKind::kPaxosAccept:
      return "PAXOS_ACCEPT";
    case MsgKind::kPaxosAccepted:
      return "PAXOS_ACCEPTED";
    case MsgKind::kLinearVote:
      return "LINEAR_VOTE";
    case MsgKind::kLinearCert:
      return "LINEAR_CERT";
    case MsgKind::kShardPrepareVote:
      return "SHARD_PREPARE_VOTE";
    case MsgKind::kShardCommitDecision:
      return "SHARD_COMMIT_DECISION";
  }
  return "UNKNOWN";
}

void Message::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind));
  enc->PutU32(sender);
  EncodePayload(enc);
}

const Bytes& Message::Serialized() const {
  if (!serialized_ready_) {
    Encoder enc;
    enc.Reserve(64);
    EncodeTo(&enc);
    serialized_ = enc.TakeBuffer();
    serialized_ready_ = true;
  }
  return serialized_;
}

const crypto::Digest& Message::WireDigest() const {
  if (!wire_digest_ready_) {
    wire_digest_ = crypto::Sha256::Hash(Serialized());
    wire_digest_ready_ = true;
  }
  return wire_digest_;
}

size_t Message::WireSize() const {
  return Serialized().size() + ExtraWireBytes();
}

Bytes ClientRequestMsg::SigningBytes(const workload::Transaction& txn) {
  Encoder enc;
  enc.PutString("sbft-client-request");
  txn.EncodeTo(&enc);
  return enc.TakeBuffer();
}

void ClientRequestMsg::EncodePayload(Encoder* enc) const {
  txn.EncodeTo(enc);
  enc->PutBytes(client_sig);
}

void PrePrepareMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  batch.EncodeTo(enc);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
}

void PrepareMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
}

void CommitMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  enc->PutBytes(ds);
}

Bytes ExecuteMsg::SigningBytes(ViewNum view, SeqNum seq,
                               const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("sbft-execute");
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutRaw(digest.data(), crypto::Digest::kSize);
  return enc.TakeBuffer();
}

void ExecuteMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  batch.EncodeTo(enc);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  cert.EncodeTo(enc);
  enc->PutBytes(spawner_sig);
}

Bytes VerifyMsg::SigningBytes(ViewNum view, SeqNum seq,
                              const crypto::Digest& batch_digest,
                              const storage::RwSet& rw, const Bytes& result) {
  Encoder enc;
  enc.PutString("sbft-verify");
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutRaw(batch_digest.data(), crypto::Digest::kSize);
  rw.EncodeTo(&enc);
  enc.PutBytes(result);
  return enc.TakeBuffer();
}

crypto::Digest VerifyMsg::MatchKey(bool include_rw) const {
  ScratchEncoder scratch;
  Encoder& enc = scratch.enc();
  enc.PutU64(seq);
  enc.PutRaw(batch_digest.data(), crypto::Digest::kSize);
  if (include_rw) {
    rw.EncodeTo(&enc);
  } else {
    // Writes must still agree — they are what the verifier applies.
    enc.PutVarint(rw.writes.size());
    for (const storage::WriteEntry& w : rw.writes) {
      enc.PutString(w.key);
      enc.PutBytes(w.value);
    }
  }
  enc.PutBytes(result);
  return crypto::Sha256::Hash(enc.buffer());
}

void VerifyMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  enc->PutRaw(batch_digest.data(), crypto::Digest::kSize);
  cert.EncodeTo(enc);
  rw.EncodeTo(enc);
  enc->PutVarint(txn_rws.size());
  for (const storage::RwSet& txn_rw : txn_rws) {
    txn_rw.EncodeTo(enc);
  }
  enc->PutVarint(txn_refs.size());
  for (const TxnRef& ref : txn_refs) {
    enc->PutU64(ref.id);
    enc->PutU32(ref.client);
  }
  enc->PutBytes(result);
  enc->PutBytes(executor_sig);
  // Fragment metadata rides in a trailing *indexed* section, emitted
  // only when at least one ref is a cross-shard fragment: pre-sharding
  // messages keep their exact wire bytes, and carrying the ref index
  // explicitly keeps the encoding injective (a per-ref conditional
  // field would let two different ref lists collide on the same bytes).
  size_t fragments = 0;
  for (const TxnRef& ref : txn_refs) {
    if (ref.global_id != 0) ++fragments;
  }
  if (fragments > 0) {
    enc->PutVarint(fragments);
    for (size_t i = 0; i < txn_refs.size(); ++i) {
      const TxnRef& ref = txn_refs[i];
      if (ref.global_id == 0) continue;
      enc->PutVarint(i);
      enc->PutU64(ref.global_id);
      enc->PutU32(ref.coordinator);
    }
  }
}

void ResponseMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(txn_id);
  enc->PutU32(client);
  enc->PutU64(seq);
  enc->PutRaw(batch_digest.data(), crypto::Digest::kSize);
  enc->PutBytes(result);
  enc->PutBool(aborted);
}

void ErrorMsg::EncodePayload(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(reason));
  enc->PutU64(kmax);
  enc->PutRaw(txn_digest.data(), crypto::Digest::kSize);
  enc->PutBool(has_txn);
  if (has_txn) {
    txn.EncodeTo(enc);
  }
}

void ReplaceMsg::EncodePayload(Encoder* enc) const {
  enc->PutRaw(txn_digest.data(), crypto::Digest::kSize);
}

void AckMsg::EncodePayload(Encoder* enc) const {
  enc->PutBool(has_seq);
  enc->PutU64(kmax);
  enc->PutRaw(txn_digest.data(), crypto::Digest::kSize);
}

void PreparedProof::EncodeTo(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  batch.EncodeTo(enc);
}

Status PreparedProof::DecodeFrom(Decoder* dec, PreparedProof* out) {
  Status st = dec->GetU64(&out->view);
  if (!st.ok()) return st;
  st = dec->GetU64(&out->seq);
  if (!st.ok()) return st;
  Bytes buf(crypto::Digest::kSize);
  for (size_t i = 0; i < crypto::Digest::kSize; ++i) {
    st = dec->GetU8(&buf[i]);
    if (!st.ok()) return st;
  }
  out->digest = crypto::Digest::FromRaw(buf.data());
  return workload::TransactionBatch::DecodeFrom(dec, &out->batch);
}

Bytes ViewChangeMsg::SigningBytes(ViewNum new_view, SeqNum stable_seq) {
  Encoder enc;
  enc.PutString("sbft-viewchange");
  enc.PutU64(new_view);
  enc.PutU64(stable_seq);
  return enc.TakeBuffer();
}

void ViewChangeMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(new_view);
  enc->PutU64(stable_seq);
  enc->PutVarint(prepared.size());
  for (const PreparedProof& p : prepared) {
    p.EncodeTo(enc);
  }
  enc->PutBytes(ds);
}

Bytes NewViewMsg::SigningBytes(ViewNum view, size_t reproposal_count) {
  Encoder enc;
  enc.PutString("sbft-newview");
  enc.PutU64(view);
  enc.PutU64(reproposal_count);
  return enc.TakeBuffer();
}

void NewViewMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutVarint(view_change_senders.size());
  for (ActorId id : view_change_senders) {
    enc->PutU32(id);
  }
  enc->PutVarint(reproposals.size());
  for (const PreparedProof& p : reproposals) {
    p.EncodeTo(enc);
  }
  enc->PutBytes(ds);
}

void CheckpointMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(upto_seq);
  enc->PutRaw(cert_log_root.data(), crypto::Digest::kSize);
  enc->PutVarint(certs.size());
  for (const crypto::CompactCertificate& c : certs) {
    c.EncodeTo(enc);
  }
  enc->PutVarint(batches.size());
  for (const PreparedProof& p : batches) {
    p.EncodeTo(enc);
  }
}

void StorageReadMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(request_id);
  enc->PutVarint(keys.size());
  for (const std::string& k : keys) {
    enc->PutString(k);
  }
}

void StorageReadReplyMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(request_id);
  enc->PutVarint(items.size());
  for (const Item& item : items) {
    enc->PutString(item.key);
    enc->PutBytes(item.value);
    enc->PutU64(item.version);
    enc->PutBool(item.found);
  }
}

void PaxosAcceptMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU64(slot);
  batch.EncodeTo(enc);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  enc->PutU64(committed_upto);
}

void PaxosAcceptedMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU64(slot);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
}

Bytes LinearVoteMsg::PrepareSigningBytes(ViewNum view, SeqNum seq,
                                         const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("sbft-linear-prepare");
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutRaw(digest.data(), crypto::Digest::kSize);
  return enc.TakeBuffer();
}

void LinearVoteMsg::EncodePayload(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(phase));
  enc->PutU64(view);
  enc->PutU64(seq);
  enc->PutRaw(digest.data(), crypto::Digest::kSize);
  enc->PutBytes(ds);
}

void LinearCertMsg::EncodePayload(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(phase));
  cert.EncodeTo(enc);
}

void ShardPrepareVoteMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(global_id);
  enc->PutU32(shard);
  enc->PutU64(seq);
  enc->PutBool(commit);
  // Watermark piggyback rides in a trailing section gated on has_meta,
  // mirroring the VerifyMsg fragment section: runs without the feature
  // keep their exact pre-watermark wire bytes (the golden scenario
  // digests pin message sizes through the transmission-delay model).
  if (has_meta) {
    enc->PutVarint(acked_cseqs.size());
    for (uint64_t cseq : acked_cseqs) {
      enc->PutU64(cseq);
    }
  }
}

void ShardCommitDecisionMsg::EncodePayload(Encoder* enc) const {
  enc->PutU64(global_id);
  enc->PutBool(commit);
  if (has_meta) {
    enc->PutU64(cseq);
    enc->PutU64(watermark);
  }
}

}  // namespace sbft::shim
