#ifndef SBFT_SHIM_MESSAGE_H_
#define SBFT_SHIM_MESSAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "crypto/certificate.h"
#include "crypto/digest.h"
#include "shim/wire_format.h"
#include "sim/actor.h"
#include "storage/rw_set.h"
#include "workload/transaction.h"

namespace sbft::shim {

/// Every message type exchanged in the serverless-edge architecture
/// (paper Figs. 3 & 4, §V, plus the CFT baseline and storage RPC).
enum class MsgKind : uint8_t {
  kClientRequest = 0,
  kPrePrepare = 1,
  kPrepare = 2,
  kCommit = 3,
  kExecute = 4,
  kVerify = 5,
  kResponse = 6,
  kError = 7,
  kReplace = 8,
  kAck = 9,
  kViewChange = 10,
  kNewView = 11,
  kCheckpoint = 12,
  kStorageRead = 13,
  kStorageReadReply = 14,
  kPaxosAccept = 15,
  kPaxosAccepted = 16,
  kLinearVote = 17,
  kLinearCert = 18,
  kShardPrepareVote = 19,
  kShardCommitDecision = 20,
  kShardVoteCert = 21,
  // Coordinator-group replication (coordinator_replicas > 1 only).
  kCoordAppend = 22,
  kCoordAck = 23,
  kCoordSyncRequest = 24,
  kCoordSyncReply = 25,
  kCoordRedirect = 26,
  // Multi-Paxos phase 1 (leader takeover read).
  kPaxosPrepare = 27,
  kPaxosPromise = 28,
};

/// Human-readable kind name for logs.
const char* MsgKindName(MsgKind kind);

/// \brief Base class of all wire messages.
///
/// Structured payloads travel by shared pointer inside the simulation.
/// The wire contract is split so the hot path never serializes:
///  - WireSize() is pure arithmetic (packed-header sizes from
///    shim/wire_format.h plus per-field length terms) — it is called on
///    every send for the size-dependent delay model and touches no
///    buffer;
///  - Serialized() materializes the canonical bytes on demand into a
///    single pooled owned buffer (returned to the pool when the message
///    dies), built by each type's BuildWire — the only
///    serialization path;
///  - WireDigest() is SHA-256 over Serialized(), cached.
/// Messages authenticated by MAC carry a kMacTagBytes allowance in their
/// size (the pairwise tag itself is recomputed through the KeyRegistry at
/// validation time, see DESIGN.md §1).
struct Message : sim::MessageBase {
  /// Size allowance for a MAC tag on MAC-authenticated messages.
  static constexpr size_t kMacTagBytes = 32;

  explicit Message(MsgKind k, ActorId s) : kind(k), sender(s) {}
  ~Message() override;

  MsgKind kind;
  ActorId sender;

  /// Canonical serialized form: packed headers + variable sections,
  /// built once into a pooled buffer and cached. Valid only after the
  /// message's fields stop changing — the same immutability contract
  /// MessagePtr already implies.
  const Bytes& Serialized() const;

  /// SHA-256 over Serialized(), computed once and cached — the
  /// message-level identity for dedup/tracing layers. Protocol digests
  /// stay domain-separated over payload components (batch, txn), so no
  /// consensus path reads this.
  const crypto::Digest& WireDigest() const;

  /// Serialized size in bytes. Pure arithmetic — no encoding happens.
  size_t WireSize() const {
    return sizeof(wire::MsgHeader) + PayloadWireBytes() + ExtraWireBytes();
  }

 protected:
  /// Arithmetic size of the payload (everything after the MsgHeader,
  /// excluding ExtraWireBytes). Must equal what BuildWire writes —
  /// Serialized() asserts the two agree.
  virtual size_t PayloadWireBytes() const = 0;
  /// Appends the payload bytes (packed fixed prefix, then variable
  /// sections) to `enc`. Called at most once per message.
  virtual void BuildWire(Encoder* enc) const = 0;
  /// Extra non-encoded wire bytes (e.g. MAC tag allowance).
  virtual size_t ExtraWireBytes() const { return 0; }

 private:
  mutable Bytes serialized_;
  mutable crypto::Digest wire_digest_;
  mutable bool serialized_ready_ = false;
  mutable bool wire_digest_ready_ = false;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Casts an envelope's payload to a concrete message type; returns nullptr
/// when the kind does not match.
template <typename T>
const T* MessageAs(const sim::Envelope& env, MsgKind kind) {
  const auto* base = static_cast<const Message*>(env.message.get());
  if (base == nullptr || base->kind != kind) return nullptr;
  return static_cast<const T*>(base);
}

/// Client -> primary: ⟨T⟩_C, DS-signed by the client (Fig. 3 line 1).
struct ClientRequestMsg : Message {
  ClientRequestMsg(ActorId s) : Message(MsgKind::kClientRequest, s) {}

  workload::Transaction txn;
  Bytes client_sig;

  /// Bytes the client signs.
  static Bytes SigningBytes(const workload::Transaction& txn);

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Primary -> nodes: PREPREPARE(⟨T⟩C, ∆, k), MAC-authenticated
/// (Fig. 3 line 6).
struct PrePrepareMsg : Message {
  explicit PrePrepareMsg(ActorId s) : Message(MsgKind::kPrePrepare, s) {}

  ViewNum view = 0;
  SeqNum seq = 0;
  workload::BatchPtr batch = workload::EmptyBatch();
  crypto::Digest digest;  ///< ∆ = H(batch).

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
  size_t ExtraWireBytes() const override { return kMacTagBytes; }
};

/// Node -> nodes: PREPARE(∆, k), MAC-authenticated (Fig. 3 line 11).
struct PrepareMsg : Message {
  explicit PrepareMsg(ActorId s) : Message(MsgKind::kPrepare, s) {}

  ViewNum view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
  size_t ExtraWireBytes() const override { return kMacTagBytes; }
};

/// Node -> nodes: ⟨COMMIT(∆, k)⟩_R, DS-signed (Fig. 3 line 13); the
/// signatures are collected into the commit certificate C.
struct CommitMsg : Message {
  explicit CommitMsg(ActorId s) : Message(MsgKind::kCommit, s) {}

  ViewNum view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;
  Bytes ds;  ///< DS over CommitSigningBytes(view, seq, digest).

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Spawner -> executor: ⟨EXECUTE(⟨T⟩C, C, m, ∆)⟩_P (Fig. 3 line 9).
struct ExecuteMsg : Message {
  explicit ExecuteMsg(ActorId s) : Message(MsgKind::kExecute, s) {}

  ViewNum view = 0;
  SeqNum seq = 0;
  workload::BatchPtr batch = workload::EmptyBatch();
  crypto::Digest digest;
  crypto::CommitCertificate cert;  ///< C: 2f_R+1 commit signatures.
  Bytes spawner_sig;               ///< DS by the spawning shim node.

  static Bytes SigningBytes(ViewNum view, SeqNum seq,
                            const crypto::Digest& digest);

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Executor -> verifier: VERIFY(⟨T⟩C, C, m, rw, r) (Fig. 3 line 20).
struct VerifyMsg : Message {
  explicit VerifyMsg(ActorId s) : Message(MsgKind::kVerify, s) {}

  /// Identity of one transaction in the batch, so the verifier can route
  /// per-transaction RESPONSE messages back to the right clients. For
  /// cross-shard fragments the ref also carries the global transaction id
  /// and the coordinator the shard verifier votes to (encoded as a
  /// trailing indexed section, present only when any ref is a fragment,
  /// so legacy messages stay byte-identical).
  struct TxnRef {
    TxnId id = 0;
    ActorId client = kInvalidActor;
    TxnId global_id = 0;
    ActorId coordinator = kInvalidActor;
  };

  ViewNum view = 0;
  SeqNum seq = 0;
  crypto::Digest batch_digest;
  crypto::CommitCertificate cert;
  storage::RwSet rw;  ///< Batch-level union of the per-txn sets.
  /// Per-transaction read/write sets, aligned with `txn_refs`. The
  /// verifier matches and validates *per transaction* under the §VI
  /// conflict regime (the paper's Fig. 3 flow is per request), so one
  /// stale read aborts one transaction, not the whole batch.
  std::vector<storage::RwSet> txn_rws;
  std::vector<TxnRef> txn_refs;
  Bytes result;         ///< Execution result r (opaque bytes).
  Bytes executor_sig;   ///< DS by the executor over the result binding.

  static Bytes SigningBytes(ViewNum view, SeqNum seq,
                            const crypto::Digest& batch_digest,
                            const storage::RwSet& rw, const Bytes& result);

  /// Digest identifying this execution outcome for quorum matching at
  /// the verifier (Fig. 3 line 23: "f_E+1 identical VERIFY messages").
  ///
  /// With `include_rw` the read/write sets participate in the match —
  /// required when transactions may conflict (§VI-B). Without it only
  /// (seq, batch, result, writes) must agree: per §IV-D, "matching
  /// read-write sets is only required when the transactions are
  /// conflicting" — executors legitimately observe different read
  /// versions when they fetch at different times.
  crypto::Digest MatchKey(bool include_rw = true) const;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Verifier -> client / primary: ⟨RESPONSE(∆, r)⟩_V per transaction
/// (Fig. 3 line 33); `aborted` carries the §VI-B ABORT outcome.
struct ResponseMsg : Message {
  explicit ResponseMsg(ActorId s) : Message(MsgKind::kResponse, s) {}

  TxnId txn_id = 0;
  ActorId client = kInvalidActor;
  SeqNum seq = 0;
  crypto::Digest batch_digest;
  Bytes result;
  bool aborted = false;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Verifier -> shim nodes on client retransmission (Fig. 4 lines 10/12):
/// either "consensus gap at kmax" or "request never seen". The
/// missing-request variant carries the full ⟨T⟩C (as in the paper's
/// ERROR(⟨T⟩C)) so an honest primary can propose it.
struct ErrorMsg : Message {
  explicit ErrorMsg(ActorId s) : Message(MsgKind::kError, s) {}

  enum class Reason : uint8_t {
    kGap = 0,             ///< Waiting on sequence kmax (Fig. 4 line 10).
    kMissingRequest = 1,  ///< No VERIFY seen for the txn (Fig. 4 line 12).
  };

  Reason reason = Reason::kGap;
  SeqNum kmax = 0;              ///< For kGap.
  crypto::Digest txn_digest;    ///< For kMissingRequest.
  bool has_txn = false;         ///< For kMissingRequest: ⟨T⟩C attached.
  workload::Transaction txn;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Verifier -> shim nodes: the primary is provably misbehaving; run a
/// view change (Fig. 4 line 14, §VI-B abort detection).
struct ReplaceMsg : Message {
  explicit ReplaceMsg(ActorId s) : Message(MsgKind::kReplace, s) {}

  crypto::Digest txn_digest;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Verifier -> shim nodes: the missing work identified by an ERROR has
/// been verified; nodes can cancel their re-transmission timers Υ
/// (§V-A2).
struct AckMsg : Message {
  explicit AckMsg(ActorId s) : Message(MsgKind::kAck, s) {}

  bool has_seq = false;
  SeqNum kmax = 0;
  crypto::Digest txn_digest;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Proof that a request prepared at (view, seq): 2f+1 PREPARE-equivalent
/// signatures. Reuses the certificate structure.
struct PreparedProof {
  ViewNum view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;
  workload::BatchPtr batch = workload::EmptyBatch();

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, PreparedProof* out);
  size_t WireSize() const;
};

/// Node -> nodes: VIEWCHANGE to view v+1 (§V-A4, PBFT-style).
struct ViewChangeMsg : Message {
  explicit ViewChangeMsg(ActorId s) : Message(MsgKind::kViewChange, s) {}

  ViewNum new_view = 0;
  SeqNum stable_seq = 0;  ///< Last checkpoint-stable sequence.
  std::vector<PreparedProof> prepared;
  Bytes ds;

  static Bytes SigningBytes(ViewNum new_view, SeqNum stable_seq);

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// New primary -> nodes: NEWVIEW with the requests that must be
/// re-proposed in the new view (§V-A4).
struct NewViewMsg : Message {
  explicit NewViewMsg(ActorId s) : Message(MsgKind::kNewView, s) {}

  ViewNum view = 0;
  std::vector<ActorId> view_change_senders;
  std::vector<PreparedProof> reproposals;
  Bytes ds;

  static Bytes SigningBytes(ViewNum view, size_t reproposal_count);

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Node -> nodes: featherweight checkpoint (§V-B): Merkle root over the
/// certificate log plus the compact certificates since the last
/// checkpoint — no client requests, no full commit proofs.
struct CheckpointMsg : Message {
  explicit CheckpointMsg(ActorId s) : Message(MsgKind::kCheckpoint, s) {}

  SeqNum upto_seq = 0;
  crypto::Digest cert_log_root;
  std::vector<crypto::CompactCertificate> certs;
  /// Batches for the certified sequences so dark nodes can adopt them.
  std::vector<PreparedProof> batches;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Executor -> storage: read request for the keys of a batch.
struct StorageReadMsg : Message {
  explicit StorageReadMsg(ActorId s) : Message(MsgKind::kStorageRead, s) {}

  uint64_t request_id = 0;
  std::vector<std::string> keys;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Storage -> executor: values + versions for the requested keys.
struct StorageReadReplyMsg : Message {
  explicit StorageReadReplyMsg(ActorId s)
      : Message(MsgKind::kStorageReadReply, s) {}

  struct Item {
    std::string key;
    Bytes value;
    uint64_t version = 0;
    bool found = false;
  };

  uint64_t request_id = 0;
  std::vector<Item> items;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Leader -> acceptors for the SERVERLESSCFT baseline (multi-Paxos
/// steady-state phase 2a; no cryptographic signatures — §IX-H).
struct PaxosAcceptMsg : Message {
  explicit PaxosAcceptMsg(ActorId s) : Message(MsgKind::kPaxosAccept, s) {}

  uint64_t ballot = 0;
  SeqNum slot = 0;
  workload::BatchPtr batch = workload::EmptyBatch();
  crypto::Digest digest;
  /// Leader's contiguous commit frontier, piggybacked so followers can
  /// bound what a failover must re-propose (slots <= this are settled).
  SeqNum committed_upto = 0;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Acceptor -> leader (phase 2b).
struct PaxosAcceptedMsg : Message {
  explicit PaxosAcceptedMsg(ActorId s)
      : Message(MsgKind::kPaxosAccepted, s) {}

  uint64_t ballot = 0;
  SeqNum slot = 0;
  crypto::Digest digest;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Phases of the linear (collector-based) shim protocol — the PoE/SBFT
/// alternative the paper's §IV-B remark suggests for replacing PBFT's two
/// quadratic phases with linear communication.
enum class LinearPhase : uint8_t {
  kPrepare = 0,
  kCommit = 1,
};

/// Node -> primary: a DS vote for one phase of (view, seq, digest).
struct LinearVoteMsg : Message {
  explicit LinearVoteMsg(ActorId s) : Message(MsgKind::kLinearVote, s) {}

  LinearPhase phase = LinearPhase::kPrepare;
  ViewNum view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;
  Bytes ds;

  /// Prepare votes sign a distinct domain; commit votes sign the standard
  /// CommitSigningBytes so the resulting certificate is exactly the C
  /// that executors and the verifier already validate.
  static Bytes PrepareSigningBytes(ViewNum view, SeqNum seq,
                                   const crypto::Digest& digest);

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Primary -> nodes: the aggregated 2f_R+1-vote certificate for a phase.
/// Carried in threshold-style compact form (§IV-C remark) so the message
/// stays O(1) in the shim size.
struct LinearCertMsg : Message {
  explicit LinearCertMsg(ActorId s) : Message(MsgKind::kLinearCert, s) {}

  LinearPhase phase = LinearPhase::kPrepare;
  crypto::CommitCertificate cert;  // Full form (validated by recipients).

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Shard verifier -> coordinator: this shard's PREPARE vote for one
/// cross-shard transaction (2PC phase 1, layered on top of the shard's
/// BFT pipeline — the vote is only produced after the fragment matched
/// f_E+1 identical VERIFYs and passed ccheck + prepare locking).
struct ShardPrepareVoteMsg : Message {
  explicit ShardPrepareVoteMsg(ActorId s)
      : Message(MsgKind::kShardPrepareVote, s) {}

  TxnId global_id = 0;
  uint32_t shard = 0;
  SeqNum seq = 0;      ///< Shard-local sequence the fragment settled at.
  bool commit = true;  ///< YES/NO vote.
  /// Watermark piggyback (twopc_watermark): decision cseqs this shard
  /// has applied but not yet seen confirmed by the coordinator's
  /// watermark. Emitted as a trailing section only when `has_meta` is
  /// set, so legacy votes keep their exact wire bytes.
  bool has_meta = false;
  std::vector<uint64_t> acked_cseqs;
  /// View stamp (coordinator_replicas > 1): the coordinator-group view
  /// this participant believes is current when it votes — a stale stamp
  /// is answered with a view-stamped decision the participant learns the
  /// real leader from. Trailing section, absent on singleton wire bytes.
  bool has_view = false;
  uint64_t coord_view = 0;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Shard verifier -> coordinator: one settle round's prepare votes as a
/// share-based certificate — K signed (signer, signature) vote shares in
/// a single message instead of K ShardPrepareVoteMsg, with each share
/// individually attributable and the whole set batch-verifiable
/// (twopc_vote_certificates; DESIGN.md §8).
struct ShardVoteCertMsg : Message {
  explicit ShardVoteCertMsg(ActorId s)
      : Message(MsgKind::kShardVoteCert, s) {}

  crypto::VoteCertificate cert;
  /// Watermark piggyback, same contract as ShardPrepareVoteMsg.
  bool has_meta = false;
  std::vector<uint64_t> acked_cseqs;
  /// View stamp, same contract as ShardPrepareVoteMsg.
  bool has_view = false;
  uint64_t coord_view = 0;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Coordinator -> participant shard verifiers: the logged 2PC outcome for
/// one cross-shard transaction. Participants apply their buffered write
/// set on commit, discard it on abort, and release prepare locks either
/// way; duplicates are idempotent (retry timers may resend).
struct ShardCommitDecisionMsg : Message {
  explicit ShardCommitDecisionMsg(ActorId s)
      : Message(MsgKind::kShardCommitDecision, s) {}

  TxnId global_id = 0;
  bool commit = false;
  /// Quorum proof: the full set of signed vote shares the coordinator
  /// decided on (twopc_vote_certificates). Participants batch-verify it
  /// before applying, so a forged decision cannot flip an outcome.
  crypto::VoteCertificate proof;
  /// Watermark piggyback (twopc_watermark): the coordinator's dense
  /// decision sequence number for this outcome (0 for presumed-abort
  /// answers) and its fully-decided watermark — every decision with
  /// cseq <= watermark is applied at all its participants, so dedup
  /// state below it can be truncated. Trailing section, emitted only
  /// when `has_meta` is set (legacy decisions keep their wire bytes).
  bool has_meta = false;
  uint64_t cseq = 0;
  uint64_t watermark = 0;
  /// View stamp (coordinator_replicas > 1): the deciding group view and
  /// the leader's actor id — how participants learn the current leader
  /// and where to redirect vote retransmits. Trailing section, absent on
  /// singleton wire bytes.
  bool has_view = false;
  uint64_t coord_view = 0;
  ActorId coord_leader = kInvalidActor;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

// ---------------------------------------------------------------------------
// Coordinator-group replication (DESIGN.md §10). None of these kinds is
// emitted when coordinator_replicas == 1 — the singleton configuration's
// wire traffic (and thereby the golden scenario digests) is untouched.
// ---------------------------------------------------------------------------

/// Coordinator leader -> followers: one replicated-log record. Serves
/// three entry kinds: heartbeats (leadership liveness + watermark
/// propagation), decision records (the quorum-fenced write-ahead log),
/// and launch records (best-effort in-flight txn metadata so a standby
/// can re-derive pending 2PC state after takeover).
struct CoordAppendMsg : Message {
  enum Entry : uint8_t {
    kHeartbeat = 0,
    kDecision = 1,
    kLaunch = 2,
  };

  explicit CoordAppendMsg(ActorId s) : Message(MsgKind::kCoordAppend, s) {}

  uint64_t view = 0;
  uint64_t append_id = 0;
  uint8_t entry = kHeartbeat;
  TxnId global_id = 0;
  bool commit = false;
  uint64_t cseq = 0;
  uint64_t watermark = 0;
  ActorId client = kInvalidActor;
  /// kDecision: the shards the decision is sent to. kLaunch: the
  /// participant set (what a standby needs to judge vote completeness).
  std::vector<uint32_t> shards;
  /// kDecision COMMITs under vote certificates: the quorum proof, so a
  /// standby can re-answer retried votes with a provable decision.
  crypto::VoteCertificate proof;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Coordinator follower -> leader: quorum ack for one decision append
/// (and for heartbeats, which maintain the leader's lease).
struct CoordAckMsg : Message {
  explicit CoordAckMsg(ActorId s) : Message(MsgKind::kCoordAck, s) {}

  uint64_t view = 0;
  uint64_t append_id = 0;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// New coordinator leader -> group: takeover read ("send me your log").
struct CoordSyncRequestMsg : Message {
  explicit CoordSyncRequestMsg(ActorId s)
      : Message(MsgKind::kCoordSyncRequest, s) {}

  uint64_t view = 0;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Coordinator member -> takeover candidate: the member's decision log
/// and launch records, plus its cseq/watermark frontier.
struct CoordSyncReplyMsg : Message {
  explicit CoordSyncReplyMsg(ActorId s)
      : Message(MsgKind::kCoordSyncReply, s) {}

  struct DecisionEntry {
    TxnId global_id = 0;
    bool commit = false;
    uint64_t cseq = 0;
    uint64_t view = 0;  ///< Group view the decision was fenced in.
    crypto::VoteCertificate proof;
  };
  struct LaunchEntry {
    TxnId global_id = 0;
    ActorId client = kInvalidActor;
    std::vector<uint32_t> shards;
  };

  uint64_t view = 0;
  uint64_t next_cseq = 1;
  uint64_t watermark = 0;
  std::vector<DecisionEntry> decisions;
  std::vector<LaunchEntry> launches;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Coordinator member -> shard verifiers (broadcast after takeover) or
/// -> a vote's sender (follower bounce): the group leader for `view` is
/// `leader`; standing votes should be re-sent there.
struct CoordRedirectMsg : Message {
  explicit CoordRedirectMsg(ActorId s)
      : Message(MsgKind::kCoordRedirect, s) {}

  uint64_t view = 0;
  ActorId leader = kInvalidActor;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

// ---------------------------------------------------------------------------
// Multi-Paxos phase 1 (CFT shim leader takeover; also the machinery the
// coordinator group's sync protocol mirrors).
// ---------------------------------------------------------------------------

/// Candidate leader -> acceptors: phase-1a read for every slot above
/// `from_slot` (the candidate's commit frontier).
struct PaxosPrepareMsg : Message {
  explicit PaxosPrepareMsg(ActorId s)
      : Message(MsgKind::kPaxosPrepare, s) {}

  uint64_t ballot = 0;
  SeqNum from_slot = 0;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

/// Acceptor -> candidate leader: phase-1b promise carrying every accepted
/// value above the requested frontier (highest accepting ballot each).
struct PaxosPromiseMsg : Message {
  explicit PaxosPromiseMsg(ActorId s)
      : Message(MsgKind::kPaxosPromise, s) {}

  struct AcceptedEntry {
    SeqNum slot = 0;
    uint64_t ballot = 0;
    workload::BatchPtr batch = workload::EmptyBatch();
  };

  uint64_t ballot = 0;
  SeqNum commit_frontier = 0;
  std::vector<AcceptedEntry> entries;

  size_t PayloadWireBytes() const override;
  void BuildWire(Encoder* enc) const override;
};

}  // namespace sbft::shim

#endif  // SBFT_SHIM_MESSAGE_H_
