#ifndef SBFT_COMMON_STATUS_H_
#define SBFT_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace sbft {

/// \brief Error-handling type used throughout the library instead of
/// exceptions (RocksDB-style).
///
/// A Status is either OK or carries a code plus a human-readable message.
/// Functions that can fail return Status (or Result<T>, see result.h) and
/// callers are expected to check `ok()` before using any outputs.
class Status {
 public:
  /// Machine-readable failure category.
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kCorruption = 3,
    kTimeout = 4,
    kAborted = 5,
    kUnavailable = 6,
    kNotSupported = 7,
    kBusy = 8,
    kInternal = 9,
    kPermissionDenied = 10,
  };

  /// Creates an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory functions, one per failure category.
  static Status Ok() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status Timeout(std::string_view msg) {
    return Status(Code::kTimeout, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status PermissionDenied(std::string_view msg) {
    return Status(Code::kPermissionDenied, msg);
  }

  /// Returns true iff this status represents success.
  bool ok() const { return code_ == Code::kOk; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsPermissionDenied() const { return code_ == Code::kPermissionDenied; }

  /// Returns the failure category.
  Code code() const { return code_; }

  /// Returns the human-readable message (empty for OK).
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Returns a static name for a status code ("NotFound", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace sbft

#endif  // SBFT_COMMON_STATUS_H_
