#ifndef SBFT_COMMON_IDS_H_
#define SBFT_COMMON_IDS_H_

#include <cstdint>

namespace sbft {

/// Identity of a simulation participant (client, shim node, executor,
/// verifier, storage). The paper's id() function (§III).
using ActorId = uint32_t;

/// Sentinel for "no actor".
constexpr ActorId kInvalidActor = 0xffffffffu;

/// Consensus sequence number k assigned by the shim primary.
using SeqNum = uint64_t;

/// PBFT view number v; the primary of view v is node (v mod n).
using ViewNum = uint64_t;

/// Client-chosen transaction identifier (unique per client).
using TxnId = uint64_t;

}  // namespace sbft

#endif  // SBFT_COMMON_IDS_H_
