#ifndef SBFT_COMMON_LOGGING_H_
#define SBFT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sbft {

/// Severity levels for the library logger.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// \brief Minimal global logger.
///
/// The simulation is single-threaded, so the logger keeps no locks. Tests
/// and benches default to kWarn; examples raise verbosity to show the
/// protocol timeline.
class Logger {
 public:
  /// Sets the minimum severity that is emitted.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// True when `level` would be emitted.
  static bool Enabled(LogLevel level);

  /// Writes one formatted line to stderr.
  static void Write(LogLevel level, const std::string& msg);
};

namespace logging_internal {

/// Stream-collecting helper behind the SBFT_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Write(level_, os_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace logging_internal
}  // namespace sbft

/// Usage: SBFT_LOG(kInfo) << "view change to " << view;
#define SBFT_LOG(severity)                                             \
  if (!::sbft::Logger::Enabled(::sbft::LogLevel::severity)) {          \
  } else                                                               \
    ::sbft::logging_internal::LogLine(::sbft::LogLevel::severity)

#endif  // SBFT_COMMON_LOGGING_H_
