#ifndef SBFT_COMMON_SIM_TIME_H_
#define SBFT_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace sbft {

/// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;

/// Simulated duration in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Builds durations from scalar amounts.
constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kSecond));
}

/// Converts a duration to fractional units.
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToMicros(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Human-readable rendering, e.g. "12.5ms" or "3.2s".
std::string FormatDuration(SimDuration d);

}  // namespace sbft

#endif  // SBFT_COMMON_SIM_TIME_H_
