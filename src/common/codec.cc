#include "common/codec.h"

#include <cstring>
#include <vector>

namespace sbft {

namespace {

/// Per-thread stack of recycled scratch buffers. Capped so a single
/// outsized encode (a checkpoint with thousands of batches) does not pin
/// megabytes of capacity forever.
constexpr size_t kMaxScratchBuffers = 8;
constexpr size_t kMaxRetainedCapacity = 1 << 20;

thread_local std::vector<Bytes> scratch_pool;

}  // namespace

Bytes AcquirePooledBuffer() {
  if (scratch_pool.empty()) return Bytes();
  Bytes buf = std::move(scratch_pool.back());
  scratch_pool.pop_back();
  buf.clear();
  return buf;
}

void ReleasePooledBuffer(Bytes buf) {
  if (scratch_pool.size() >= kMaxScratchBuffers ||
      buf.capacity() > kMaxRetainedCapacity) {
    return;
  }
  scratch_pool.push_back(std::move(buf));
}

Bytes ScratchEncoder::AcquireScratchBuffer() { return AcquirePooledBuffer(); }

void ScratchEncoder::ReleaseScratchBuffer(Bytes buf) {
  ReleasePooledBuffer(std::move(buf));
}

void Encoder::PutU8(uint8_t v) { buf_.push_back(v); }

void Encoder::PutU16(uint16_t v) {
  uint8_t le[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
  buf_.insert(buf_.end(), le, le + sizeof(le));
}

void Encoder::PutU32(uint32_t v) {
  uint8_t le[4];
  for (int i = 0; i < 4; ++i) le[i] = static_cast<uint8_t>(v >> (8 * i));
  buf_.insert(buf_.end(), le, le + sizeof(le));
}

void Encoder::PutU64(uint64_t v) {
  uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<uint8_t>(v >> (8 * i));
  buf_.insert(buf_.end(), le, le + sizeof(le));
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutBool(bool v) { buf_.push_back(v ? 1 : 0); }

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Status Decoder::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  *out = data_[pos_++];
  return Status::Ok();
}

Status Decoder::GetU16(uint16_t* out) {
  if (remaining() < 2) return Status::Corruption("truncated u16");
  *out = static_cast<uint16_t>(data_[pos_]) |
         static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return Status::Ok();
}

Status Decoder::GetU32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::Ok();
}

Status Decoder::GetU64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::Ok();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint overflow");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v;
  Status s = GetU8(&v);
  if (!s.ok()) return s;
  if (v > 1) return Status::Corruption("invalid bool");
  *out = (v == 1);
  return Status::Ok();
}

Status Decoder::GetDouble(double* out) {
  uint64_t bits;
  Status s = GetU64(&bits);
  if (!s.ok()) return s;
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status Decoder::GetBytes(Bytes* out) {
  uint64_t len;
  Status s = GetVarint(&len);
  if (!s.ok()) return s;
  if (len > remaining()) return Status::Corruption("truncated bytes");
  out->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::Ok();
}

Status Decoder::GetString(std::string* out) {
  uint64_t len;
  Status s = GetVarint(&len);
  if (!s.ok()) return s;
  if (len > remaining()) return Status::Corruption("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::Ok();
}

}  // namespace sbft
