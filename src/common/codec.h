#ifndef SBFT_COMMON_CODEC_H_
#define SBFT_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace sbft {

/// Encoded length of a LEB128 varint — the arithmetic twin of
/// Encoder::PutVarint, so wire sizes can be computed without encoding.
constexpr size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Encoded length of a length-prefixed byte/string field (PutBytes /
/// PutString): varint prefix plus the payload.
constexpr size_t SizedLen(size_t payload) {
  return VarintLen(payload) + payload;
}

/// Checks out / returns a recycled buffer from the per-thread pool that
/// also backs ScratchEncoder. Messages use this for their single owned
/// wire buffer so steady-state serialization never hits the allocator.
Bytes AcquirePooledBuffer();
void ReleasePooledBuffer(Bytes buf);

/// \brief Little-endian binary encoder used for all wire messages.
///
/// The encoding is deliberately simple and deterministic: fixed-width
/// little-endian integers, LEB128 varints, and length-prefixed byte strings.
/// Every message type in shim/message.h serializes through this class so
/// that digests, signatures, and the reported message sizes are stable.
class Encoder {
 public:
  Encoder() = default;

  /// Constructs around an existing buffer (cleared, capacity kept) — the
  /// hook ScratchEncoder uses to recycle allocations across encodes.
  explicit Encoder(Bytes&& reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  /// Pre-grows the buffer to at least `total` bytes.
  void Reserve(size_t total) { buf_.reserve(total); }

  /// Appends one byte.
  void PutU8(uint8_t v);
  /// Appends a 16-bit little-endian integer.
  void PutU16(uint16_t v);
  /// Appends a 32-bit little-endian integer.
  void PutU32(uint32_t v);
  /// Appends a 64-bit little-endian integer.
  void PutU64(uint64_t v);
  /// Appends a 64-bit integer as LEB128 (1-10 bytes).
  void PutVarint(uint64_t v);
  /// Appends a bool as one byte (0/1).
  void PutBool(bool v);
  /// Appends an IEEE-754 double (8 bytes, bit pattern).
  void PutDouble(double v);
  /// Appends varint length followed by the raw bytes.
  void PutBytes(const Bytes& b);
  /// Appends varint length followed by the string's characters.
  void PutString(std::string_view s);
  /// Appends `len` raw bytes with no length prefix.
  void PutRaw(const uint8_t* data, size_t len);

  /// Number of bytes encoded so far.
  size_t size() const { return buf_.size(); }

  /// Read-only view of the buffer.
  const Bytes& buffer() const { return buf_; }

  /// Moves the buffer out of the encoder.
  Bytes TakeBuffer() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// \brief An Encoder whose buffer is checked out of a thread-local pool.
///
/// The hot paths (WireSize, content digests, signing-bytes builders)
/// encode into a buffer only to measure or hash it and then throw it away;
/// with a plain Encoder that is one heap allocation per call. A
/// ScratchEncoder returns the buffer — capacity intact — to the pool on
/// destruction, so steady-state encodes are allocation-free. The pool is a
/// small stack, so nested scratch encodes (e.g. a message encode that
/// sizes a sub-object) each get their own buffer.
class ScratchEncoder {
 public:
  ScratchEncoder() : enc_(AcquireScratchBuffer()) {}
  ~ScratchEncoder() { ReleaseScratchBuffer(enc_.TakeBuffer()); }

  ScratchEncoder(const ScratchEncoder&) = delete;
  ScratchEncoder& operator=(const ScratchEncoder&) = delete;

  Encoder* operator->() { return &enc_; }
  Encoder& enc() { return enc_; }

 private:
  static Bytes AcquireScratchBuffer();
  static void ReleaseScratchBuffer(Bytes buf);

  Encoder enc_;
};

/// \brief Decoder matching Encoder; every getter validates bounds and
/// returns Status::Corruption on truncated or malformed input.
class Decoder {
 public:
  /// The decoder borrows `data`; the caller keeps it alive while decoding.
  explicit Decoder(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetBool(bool* out);
  Status GetDouble(double* out);
  Status GetBytes(Bytes* out);
  Status GetString(std::string* out);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }

  /// True when the whole buffer has been consumed.
  bool Done() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace sbft

#endif  // SBFT_COMMON_CODEC_H_
