#include "common/bytes.h"

namespace sbft {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string BytesToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

bool HexDecode(std::string_view hex, Bytes* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexDigitValue(hex[i]);
    int lo = HexDigitValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void AppendBytes(Bytes* dst, const Bytes& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Fnv1a64(const Bytes& b) { return Fnv1a64(b.data(), b.size()); }

}  // namespace sbft
