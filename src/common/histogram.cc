#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace sbft {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  int msb = 63 - std::countl_zero(v);
  int octave = msb - kSubBucketBits + 1;
  int sub = static_cast<int>((v >> (octave - 1)) & (kSubBuckets - 1));
  int idx = (octave + 1) * kSubBuckets + sub;
  return std::min(idx, kBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  int octave = bucket / kSubBuckets - 1;
  int sub = bucket % kSubBuckets;
  int64_t base = kSubBuckets + sub + 1;
  int shift = octave - 1;
  // The top octaves would overflow the shift (values near int64 max);
  // saturate so Percentile() cannot wrap to a tiny bound and report min
  // for a maximal observation.
  if (shift >= 63 || base > (std::numeric_limits<int64_t>::max() >> shift)) {
    return std::numeric_limits<int64_t>::max();
  }
  return (base << shift) - 1;
}

void Histogram::Record(int64_t value) { RecordMultiple(value, 1); }

void Histogram::RecordMultiple(int64_t value, uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[BucketFor(value)] += count;
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly; don't round them to bucket bounds.
  if (p == 0.0) return min_;
  if (p == 100.0) return max_;
  // Number of observations at or below the answer.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " p50=" << p50()
     << " p99=" << p99() << " max=" << max();
  return os.str();
}

}  // namespace sbft
