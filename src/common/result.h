#ifndef SBFT_COMMON_RESULT_H_
#define SBFT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace sbft {

/// \brief Value-or-Status return type.
///
/// A Result<T> holds either a value of type T (when `ok()`) or a non-OK
/// Status explaining the failure. It converts implicitly from both T and
/// Status so functions can `return value;` or `return Status::NotFound(..)`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// Returns true iff a value is present.
  bool ok() const { return status_.ok(); }

  /// Returns the status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sbft

#endif  // SBFT_COMMON_RESULT_H_
