#ifndef SBFT_COMMON_RNG_H_
#define SBFT_COMMON_RNG_H_

#include <cstdint>

namespace sbft {

/// \brief Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64).
///
/// Every stochastic component of the simulation (network jitter, workload
/// key choice, byzantine coin flips) draws from an Rng forked from the
/// experiment seed, so a run is exactly reproducible from its seed. Never
/// used for cryptographic material.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Creates an independent child generator; children with different
  /// `stream` ids are statistically independent of each other and of the
  /// parent's future output.
  Rng Fork(uint64_t stream);

 private:
  uint64_t s_[4];
};

}  // namespace sbft

#endif  // SBFT_COMMON_RNG_H_
