#include "common/logging.h"

#include <cstdio>

namespace sbft {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logger::level() { return g_level; }

bool Logger::Enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void Logger::Write(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace sbft
