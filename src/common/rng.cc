#include "common/rng.h"

#include <cmath>

namespace sbft {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork(uint64_t stream) {
  // Derive a child seed from our state plus the stream id; golden-ratio
  // mixing keeps nearby stream ids decorrelated.
  uint64_t seed = NextU64() ^ (stream * 0x9e3779b97f4a7c15ull + 0x1234567);
  return Rng(seed);
}

}  // namespace sbft
