#ifndef SBFT_COMMON_BYTES_H_
#define SBFT_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbft {

/// Owned byte buffer used for message payloads, keys, and crypto material.
using Bytes = std::vector<uint8_t>;

/// Builds a byte buffer from a string's characters.
Bytes ToBytes(std::string_view s);

/// Interprets a byte buffer as text (lossy for non-ASCII content).
std::string BytesToString(const Bytes& b);

/// Lower-case hex encoding ("deadbeef").
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const Bytes& b);

/// Decodes lower/upper-case hex; returns false on odd length or bad digit.
bool HexDecode(std::string_view hex, Bytes* out);

/// Constant-time equality for secret material (MAC tags, keys).
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

/// Appends `src` to `dst`.
void AppendBytes(Bytes* dst, const Bytes& src);

/// 64-bit FNV-1a over a byte range; used for non-cryptographic hashing
/// (container keys, dedup) — never for authentication.
uint64_t Fnv1a64(const uint8_t* data, size_t len);
uint64_t Fnv1a64(const Bytes& b);

}  // namespace sbft

#endif  // SBFT_COMMON_BYTES_H_
