#ifndef SBFT_COMMON_HISTOGRAM_H_
#define SBFT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sbft {

/// \brief Log-bucketed histogram for latency / size distributions.
///
/// Values are bucketed with ~4.5% relative precision (32 sub-buckets per
/// power of two), which is plenty for the percentile reporting the
/// benchmark harness does. Recording is O(1); percentile queries scan the
/// bucket array.
class Histogram {
 public:
  Histogram();

  /// Records one observation (negative values clamp to zero).
  void Record(int64_t value);

  /// Records `count` identical observations.
  void RecordMultiple(int64_t value, uint64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Removes all observations.
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;

  /// Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
  int64_t Percentile(double p) const;

  /// Convenience accessors.
  int64_t p50() const { return Percentile(50.0); }
  int64_t p95() const { return Percentile(95.0); }
  int64_t p99() const { return Percentile(99.0); }
  int64_t p999() const { return Percentile(99.9); }

  /// One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = 64 * kSubBuckets;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace sbft

#endif  // SBFT_COMMON_HISTOGRAM_H_
