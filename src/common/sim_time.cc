#include "common/sim_time.h"

#include <cstdio>

namespace sbft {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  if (d < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  } else if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ToMicros(d));
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ToMillis(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ToSeconds(d));
  }
  return buf;
}

}  // namespace sbft
