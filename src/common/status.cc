#include "common/status.h"

namespace sbft {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kTimeout:
      return "Timeout";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kPermissionDenied:
      return "PermissionDenied";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sbft
