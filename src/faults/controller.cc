#include "faults/controller.h"

#include <cassert>
#include <sstream>

#include "common/logging.h"

namespace sbft::faults {

namespace {

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashReplica: return "crash node";
    case FaultKind::kRecoverReplica: return "recover node";
    case FaultKind::kPartitionNodes: return "partition nodes";
    case FaultKind::kHealNodes: return "heal nodes";
    case FaultKind::kPartitionRegions: return "partition regions";
    case FaultKind::kHealRegions: return "heal regions";
    case FaultKind::kLinkRule: return "link rule";
    case FaultKind::kClearLinkRule: return "clear link";
    case FaultKind::kClockSkew: return "clock skew";
    case FaultKind::kSetByzantine: return "byzantine node";
    case FaultKind::kClearByzantine: return "honest node";
    case FaultKind::kKillExecutors: return "kill executors";
    case FaultKind::kSuspendSpawns: return "suspend spawns";
    case FaultKind::kResumeSpawns: return "resume spawns";
    case FaultKind::kStraggleExecutors: return "straggle executors";
    case FaultKind::kCrashCoordinator: return "crash coordinator";
    case FaultKind::kRecoverCoordinator: return "recover coordinator";
    case FaultKind::kCrashCoordinatorMember:
      return "crash coordinator member";
    case FaultKind::kCrashCoordinatorLeader:
      return "crash coordinator leader";
    case FaultKind::kRecoverCoordinatorMember:
      return "recover coordinator member";
    case FaultKind::kPartitionCoordinators: return "partition coordinators";
    case FaultKind::kHealCoordinators: return "heal coordinators";
  }
  return "?";
}

}  // namespace

FaultController::FaultController(core::Architecture* arch)
    : Actor(kControllerId, "fault-controller"), arch_(arch) {}

FaultController::~FaultController() {
  if (installed_) arch_->network()->Unregister(id());
}

Status FaultController::Validate(const FaultEvent& event) const {
  uint32_t n = static_cast<uint32_t>(arch_->shim_ids().size());
  size_t regions = arch_->network()->regions().size();
  auto bad_node = [&](uint32_t node) { return node >= n; };
  std::ostringstream os;
  switch (event.kind) {
    case FaultKind::kCrashReplica:
    case FaultKind::kRecoverReplica:
    case FaultKind::kClockSkew:
    case FaultKind::kSetByzantine:
    case FaultKind::kClearByzantine:
      if (bad_node(event.node)) {
        os << KindName(event.kind) << " " << event.node << ": only " << n
           << " shim nodes";
        return Status::InvalidArgument(os.str());
      }
      break;
    case FaultKind::kLinkRule:
    case FaultKind::kClearLinkRule:
      if (bad_node(event.node) || bad_node(event.node_b)) {
        os << KindName(event.kind) << " " << event.node << " "
           << event.node_b << ": only " << n << " shim nodes";
        return Status::InvalidArgument(os.str());
      }
      break;
    case FaultKind::kPartitionNodes:
      for (uint32_t node : event.group_a) {
        if (bad_node(node)) {
          return Status::InvalidArgument("partition nodes: bad index");
        }
      }
      for (uint32_t node : event.group_b) {
        if (bad_node(node)) {
          return Status::InvalidArgument("partition nodes: bad index");
        }
      }
      break;
    case FaultKind::kPartitionRegions:
    case FaultKind::kHealRegions:
      if (event.region_a >= regions || event.region_b >= regions) {
        os << KindName(event.kind) << " " << event.region_a << " "
           << event.region_b << ": only " << regions << " regions";
        return Status::InvalidArgument(os.str());
      }
      break;
    case FaultKind::kCrashCoordinator:
    case FaultKind::kRecoverCoordinator:
    case FaultKind::kCrashCoordinatorLeader:
    case FaultKind::kHealCoordinators:
      if (arch_->coordinator() == nullptr) {
        os << KindName(event.kind)
           << ": no coordinator (shard_count must be > 1)";
        return Status::InvalidArgument(os.str());
      }
      break;
    case FaultKind::kCrashCoordinatorMember:
    case FaultKind::kRecoverCoordinatorMember:
      if (event.node >= arch_->coordinator_replicas()) {
        os << KindName(event.kind) << " " << event.node << ": only "
           << arch_->coordinator_replicas() << " coordinator members";
        return Status::InvalidArgument(os.str());
      }
      break;
    case FaultKind::kPartitionCoordinators:
      for (uint32_t member : event.group_a) {
        if (member >= arch_->coordinator_replicas()) {
          return Status::InvalidArgument(
              "partition coordinators: bad member index");
        }
      }
      for (uint32_t member : event.group_b) {
        if (member >= arch_->coordinator_replicas()) {
          return Status::InvalidArgument(
              "partition coordinators: bad member index");
        }
      }
      break;
    default:
      break;  // No operands to validate.
  }
  return Status::Ok();
}

Status FaultController::Install(const FaultSchedule& schedule) {
  assert(!installed_ && "Install must be called once");
  for (const FaultEvent& event : schedule.events()) {
    Status status = Validate(event);
    if (!status.ok()) return status;
  }
  installed_ = true;
  arch_->network()->Register(this, sim::RegionTable::kHomeRegion);
  for (const FaultEvent& event : schedule.events()) {
    // Copy the event into the closure: the schedule may not outlive us.
    arch_->simulator()->ScheduleAt(event.at,
                                   [this, event]() { Apply(event); });
  }
  return Status::Ok();
}

ActorId FaultController::ShimActor(uint32_t index) const {
  const std::vector<ActorId>& ids = arch_->shim_ids();
  return index < ids.size() ? ids[index] : kInvalidActor;
}

void FaultController::SetReplicaCrashed(uint32_t index, bool crashed) {
  const auto& pbft = arch_->pbft_replicas();
  if (index < pbft.size()) pbft[index]->SetCrashed(crashed);
  const auto& linear = arch_->linear_replicas();
  if (index < linear.size()) linear[index]->SetCrashed(crashed);
  const auto& paxos = arch_->paxos_replicas();
  if (index < paxos.size()) paxos[index]->SetCrashed(crashed);
}

void FaultController::SetReplicaBehavior(
    uint32_t index, const shim::ByzantineBehavior& behavior) {
  const auto& pbft = arch_->pbft_replicas();
  if (index < pbft.size()) pbft[index]->SetBehavior(behavior);
  const auto& linear = arch_->linear_replicas();
  if (index < linear.size()) linear[index]->SetBehavior(behavior);
  // Spawning attacks ride on commit callbacks that captured the
  // configured behaviour; the spawner-side override (of the node's own
  // shard plane) keeps them in sync.
  ActorId id = ShimActor(index);
  if (id != kInvalidActor) {
    uint32_t shard = index / arch_->config().shim.n;
    core::Spawner* spawner = arch_->plane(shard)->spawner();
    if (behavior.byzantine) {
      spawner->SetNodeBehaviorOverride(id, behavior);
    } else {
      spawner->ClearNodeBehaviorOverride(id);
    }
  }
}

void FaultController::Apply(const FaultEvent& event) {
  sim::Network* net = arch_->network();
  switch (event.kind) {
    case FaultKind::kCrashReplica:
      SetReplicaCrashed(event.node, true);
      break;
    case FaultKind::kRecoverReplica:
      SetReplicaCrashed(event.node, false);
      break;
    case FaultKind::kPartitionNodes:
      for (uint32_t a : event.group_a) {
        for (uint32_t b : event.group_b) {
          net->SetLinkEnabled(ShimActor(a), ShimActor(b), false);
        }
      }
      break;
    case FaultKind::kHealNodes: {
      const std::vector<ActorId>& ids = arch_->shim_ids();
      for (size_t a = 0; a < ids.size(); ++a) {
        for (size_t b = a + 1; b < ids.size(); ++b) {
          net->SetLinkEnabled(ids[a], ids[b], true);
        }
      }
      break;
    }
    case FaultKind::kPartitionRegions:
      net->SetRegionPartition(event.region_a, event.region_b, true);
      break;
    case FaultKind::kHealRegions:
      net->SetRegionPartition(event.region_a, event.region_b, false);
      break;
    case FaultKind::kLinkRule:
      net->SetLinkRule(ShimActor(event.node), ShimActor(event.node_b),
                       event.rule);
      break;
    case FaultKind::kClearLinkRule:
      net->ClearLinkRule(ShimActor(event.node), ShimActor(event.node_b));
      break;
    case FaultKind::kClockSkew:
      net->SetActorDelay(ShimActor(event.node), event.delay);
      break;
    case FaultKind::kSetByzantine:
      SetReplicaBehavior(event.node, event.behavior);
      break;
    case FaultKind::kClearByzantine:
      SetReplicaBehavior(event.node, shim::ByzantineBehavior{});
      break;
    case FaultKind::kKillExecutors:
      for (uint32_t s = 0; s < arch_->shard_count(); ++s) {
        arch_->plane(s)->cloud()->KillAllExecutors();
      }
      break;
    case FaultKind::kSuspendSpawns:
      for (uint32_t s = 0; s < arch_->shard_count(); ++s) {
        arch_->plane(s)->cloud()->SetSpawnsSuspended(true);
      }
      break;
    case FaultKind::kResumeSpawns:
      for (uint32_t s = 0; s < arch_->shard_count(); ++s) {
        arch_->plane(s)->cloud()->SetSpawnsSuspended(false);
      }
      break;
    case FaultKind::kStraggleExecutors:
      for (uint32_t s = 0; s < arch_->shard_count(); ++s) {
        arch_->plane(s)->cloud()->SetExtraStartLatency(event.delay);
      }
      break;
    case FaultKind::kCrashCoordinator:
      arch_->coordinator()->SetCrashed(true);
      break;
    case FaultKind::kRecoverCoordinator:
      arch_->coordinator()->SetCrashed(false);
      break;
    case FaultKind::kCrashCoordinatorMember:
      arch_->coordinator(event.node)->SetCrashed(true);
      break;
    case FaultKind::kCrashCoordinatorLeader: {
      // Resolve at fire time: a prior crash/failover in the same
      // schedule may have moved leadership since the scenario was
      // written — "the leader" always means the one serving right now.
      uint32_t r = arch_->CurrentCoordinatorId() -
                   core::Architecture::kCoordinatorId;
      core::TxnCoordinator* leader = arch_->coordinator(r);
      if (leader != nullptr) leader->SetCrashed(true);
      break;
    }
    case FaultKind::kRecoverCoordinatorMember:
      arch_->coordinator(event.node)->SetCrashed(false);
      break;
    case FaultKind::kPartitionCoordinators:
      for (uint32_t a : event.group_a) {
        for (uint32_t b : event.group_b) {
          net->SetLinkEnabled(core::Architecture::kCoordinatorId + a,
                              core::Architecture::kCoordinatorId + b,
                              false);
        }
      }
      break;
    case FaultKind::kHealCoordinators: {
      uint32_t replicas = arch_->coordinator_replicas();
      for (uint32_t a = 0; a < replicas; ++a) {
        for (uint32_t b = a + 1; b < replicas; ++b) {
          net->SetLinkEnabled(core::Architecture::kCoordinatorId + a,
                              core::Architecture::kCoordinatorId + b, true);
        }
      }
      break;
    }
  }
  ++events_applied_;
  std::ostringstream os;
  os << FormatDuration(arch_->simulator()->now()) << " "
     << KindName(event.kind);
  applied_log_.push_back(os.str());
  SBFT_LOG(kInfo) << name() << " applied: " << applied_log_.back();
}

}  // namespace sbft::faults
