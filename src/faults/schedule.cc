#include "faults/schedule.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace sbft::faults {

namespace {

/// Splits a line into whitespace-separated tokens, dropping `#` comments.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status LineError(size_t line_no, std::string_view what) {
  std::ostringstream os;
  os << "scenario line " << line_no << ": " << what;
  return Status::InvalidArgument(os.str());
}

bool ParseUint(const std::string& token, uint32_t* out) {
  // strtoul would silently wrap "-1" to a huge value; demand digits.
  if (token.empty() ||
      std::isdigit(static_cast<unsigned char>(token[0])) == 0) {
    return false;
  }
  char* end = nullptr;
  unsigned long value = std::strtoul(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value > 0xfffffffful) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ParseInt(const std::string& token, int* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  long value = std::strtol(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseProbability(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

/// Parses one byzantine flag ("equivocate", "spawn-delay=120ms", ...)
/// into `behavior`. Returns false on an unknown flag or bad payload.
bool ApplyByzantineFlag(const std::string& flag,
                        shim::ByzantineBehavior* behavior) {
  behavior->byzantine = true;
  std::string key = flag;
  std::string value;
  size_t eq = flag.find('=');
  if (eq != std::string::npos) {
    key = flag.substr(0, eq);
    value = flag.substr(eq + 1);
  }
  if (key == "crash") {
    behavior->crash = true;
    return value.empty();
  }
  if (key == "equivocate") {
    behavior->equivocate = true;
    return value.empty();
  }
  if (key == "suppress-requests") {
    behavior->suppress_requests = true;
    return value.empty();
  }
  if (key == "dark") {
    std::stringstream ss(value);
    std::string id;
    while (std::getline(ss, id, ',')) {
      uint32_t actor = 0;
      if (!ParseUint(id, &actor)) return false;
      behavior->dark_nodes.push_back(actor);
    }
    return !behavior->dark_nodes.empty();
  }
  if (key == "spawn-delay") {
    auto delay = ParseDurationLiteral(value);
    if (!delay.ok()) return false;
    behavior->spawn_delay = *delay;
    return true;
  }
  if (key == "spawn-count") {
    int count = 0;
    if (!ParseInt(value, &count) || count < 0) return false;
    behavior->spawn_count_override = count;
    return true;
  }
  if (key == "duplicate-spawns") {
    int count = 0;
    if (!ParseInt(value, &count) || count < 0) return false;
    behavior->duplicate_spawns = count;
    return true;
  }
  return false;
}

}  // namespace

Result<SimDuration> ParseDurationLiteral(std::string_view token) {
  if (token.empty()) {
    return Status::InvalidArgument("empty duration");
  }
  size_t unit_start = token.size();
  while (unit_start > 0 &&
         !(std::isdigit(static_cast<unsigned char>(token[unit_start - 1])) !=
               0 ||
           token[unit_start - 1] == '.')) {
    --unit_start;
  }
  std::string number(token.substr(0, unit_start));
  std::string unit(token.substr(unit_start));
  char* end = nullptr;
  double value = std::strtod(number.c_str(), &end);
  if (number.empty() || end == nullptr || *end != '\0' || value < 0) {
    return Status::InvalidArgument("bad duration: " + std::string(token));
  }
  double scale;
  if (unit == "ns") {
    scale = static_cast<double>(kNanosecond);
  } else if (unit == "us") {
    scale = static_cast<double>(kMicrosecond);
  } else if (unit == "ms") {
    scale = static_cast<double>(kMillisecond);
  } else if (unit == "s") {
    scale = static_cast<double>(kSecond);
  } else {
    return Status::InvalidArgument("bad duration unit: " +
                                   std::string(token));
  }
  return static_cast<SimDuration>(value * scale);
}

void FaultSchedule::Add(FaultEvent event) {
  // Insert keeping time order, stable among equal times: a schedule's
  // semantics must not depend on the order Add was called for distinct
  // times, and must preserve it for equal times.
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, std::move(event));
}

Result<FaultSchedule> FaultSchedule::Parse(std::string_view text) {
  FaultSchedule schedule;
  std::stringstream lines{std::string(text)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;
    if (tok[0] != "at" || tok.size() < 3) {
      return LineError(line_no, "expected 'at <time> <action> ...'");
    }
    auto when = ParseDurationLiteral(tok[1]);
    if (!when.ok()) return LineError(line_no, when.status().message());

    FaultEvent event;
    event.at = *when;
    const std::string& action = tok[2];
    auto arg = [&](size_t i) -> const std::string& {
      static const std::string empty;
      return 3 + i < tok.size() ? tok[3 + i] : empty;
    };
    size_t args = tok.size() - 3;

    if (action == "crash" && arg(0) == "node" && args == 2) {
      event.kind = FaultKind::kCrashReplica;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad node index");
      }
    } else if (action == "recover" && arg(0) == "node" && args == 2) {
      event.kind = FaultKind::kRecoverReplica;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad node index");
      }
    } else if (action == "crash" && arg(0) == "coordinator" && args == 1) {
      event.kind = FaultKind::kCrashCoordinator;
    } else if (action == "recover" && arg(0) == "coordinator" &&
               args == 1) {
      event.kind = FaultKind::kRecoverCoordinator;
    } else if (action == "crash" && arg(0) == "coordinator" && args == 2 &&
               arg(1) == "leader") {
      event.kind = FaultKind::kCrashCoordinatorLeader;
    } else if (action == "crash" && arg(0) == "coordinator" && args == 2) {
      event.kind = FaultKind::kCrashCoordinatorMember;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad coordinator member index");
      }
    } else if (action == "recover" && arg(0) == "coordinator" &&
               args == 2) {
      event.kind = FaultKind::kRecoverCoordinatorMember;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad coordinator member index");
      }
    } else if (action == "partition" && arg(0) == "coordinators") {
      event.kind = FaultKind::kPartitionCoordinators;
      bool after_bar = false;
      for (size_t i = 1; i < args; ++i) {
        if (arg(i) == "|") {
          after_bar = true;
          continue;
        }
        uint32_t member = 0;
        if (!ParseUint(arg(i), &member)) {
          return LineError(line_no, "bad member index in partition");
        }
        (after_bar ? event.group_b : event.group_a).push_back(member);
      }
      if (event.group_a.empty() || event.group_b.empty()) {
        return LineError(line_no,
                         "partition coordinators needs '<i...> | <j...>'");
      }
    } else if (action == "heal" && arg(0) == "coordinators" && args == 1) {
      event.kind = FaultKind::kHealCoordinators;
    } else if (action == "partition" && arg(0) == "nodes") {
      event.kind = FaultKind::kPartitionNodes;
      bool after_bar = false;
      for (size_t i = 1; i < args; ++i) {
        if (arg(i) == "|") {
          after_bar = true;
          continue;
        }
        uint32_t node = 0;
        if (!ParseUint(arg(i), &node)) {
          return LineError(line_no, "bad node index in partition");
        }
        (after_bar ? event.group_b : event.group_a).push_back(node);
      }
      if (event.group_a.empty() || event.group_b.empty()) {
        return LineError(line_no,
                         "partition nodes needs '<i...> | <j...>'");
      }
    } else if (action == "heal" && arg(0) == "nodes" && args == 1) {
      event.kind = FaultKind::kHealNodes;
    } else if (action == "partition" && arg(0) == "regions" && args == 3) {
      event.kind = FaultKind::kPartitionRegions;
      if (!ParseUint(arg(1), &event.region_a) ||
          !ParseUint(arg(2), &event.region_b)) {
        return LineError(line_no, "bad region id");
      }
    } else if (action == "heal" && arg(0) == "regions" && args == 3) {
      event.kind = FaultKind::kHealRegions;
      if (!ParseUint(arg(1), &event.region_a) ||
          !ParseUint(arg(2), &event.region_b)) {
        return LineError(line_no, "bad region id");
      }
    } else if (action == "link" && args >= 2) {
      event.kind = FaultKind::kLinkRule;
      if (!ParseUint(arg(0), &event.node) ||
          !ParseUint(arg(1), &event.node_b)) {
        return LineError(line_no, "bad link endpoints");
      }
      for (size_t i = 2; i < args; i += 2) {
        if (i + 1 >= args) {
          return LineError(line_no, "link option missing value");
        }
        if (arg(i) == "drop") {
          if (!ParseProbability(arg(i + 1), &event.rule.drop_probability)) {
            return LineError(line_no, "bad drop probability");
          }
        } else if (arg(i) == "dup") {
          if (!ParseProbability(arg(i + 1),
                                &event.rule.duplicate_probability)) {
            return LineError(line_no, "bad dup probability");
          }
        } else if (arg(i) == "delay") {
          auto delay = ParseDurationLiteral(arg(i + 1));
          if (!delay.ok()) return LineError(line_no, "bad link delay");
          event.rule.extra_delay = *delay;
        } else {
          return LineError(line_no, "unknown link option: " + arg(i));
        }
      }
    } else if (action == "clear" && arg(0) == "link" && args == 3) {
      event.kind = FaultKind::kClearLinkRule;
      if (!ParseUint(arg(1), &event.node) ||
          !ParseUint(arg(2), &event.node_b)) {
        return LineError(line_no, "bad link endpoints");
      }
    } else if (action == "skew" && arg(0) == "node" && args == 3) {
      event.kind = FaultKind::kClockSkew;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad node index");
      }
      auto delay = ParseDurationLiteral(arg(2));
      if (!delay.ok()) return LineError(line_no, "bad skew duration");
      event.delay = *delay;
    } else if (action == "byzantine" && arg(0) == "node" && args == 3) {
      event.kind = FaultKind::kSetByzantine;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad node index");
      }
      std::stringstream flags(arg(2));
      std::string flag;
      while (std::getline(flags, flag, ',')) {
        if (!ApplyByzantineFlag(flag, &event.behavior)) {
          return LineError(line_no, "bad byzantine flag: " + flag);
        }
      }
      if (!event.behavior.byzantine) {
        return LineError(line_no, "byzantine needs at least one flag");
      }
    } else if (action == "honest" && arg(0) == "node" && args == 2) {
      event.kind = FaultKind::kClearByzantine;
      if (!ParseUint(arg(1), &event.node)) {
        return LineError(line_no, "bad node index");
      }
    } else if (action == "kill" && arg(0) == "executors" && args == 1) {
      event.kind = FaultKind::kKillExecutors;
    } else if (action == "suspend" && arg(0) == "spawns" && args == 1) {
      event.kind = FaultKind::kSuspendSpawns;
    } else if (action == "resume" && arg(0) == "spawns" && args == 1) {
      event.kind = FaultKind::kResumeSpawns;
    } else if (action == "straggle" && arg(0) == "executors" && args == 2) {
      event.kind = FaultKind::kStraggleExecutors;
      auto delay = ParseDurationLiteral(arg(1));
      if (!delay.ok()) return LineError(line_no, "bad straggle duration");
      event.delay = *delay;
    } else {
      return LineError(line_no, "unknown action: " + action);
    }
    schedule.Add(std::move(event));
  }
  return schedule;
}

}  // namespace sbft::faults
