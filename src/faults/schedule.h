#ifndef SBFT_FAULTS_SCHEDULE_H_
#define SBFT_FAULTS_SCHEDULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "faults/fault_event.h"

namespace sbft::faults {

/// \brief An ordered list of timed fault events — the deterministic
/// "chaos script" one run replays.
///
/// Schedules are usually written in the declarative scenario format (one
/// event per line) and parsed with Parse(); tests can also build them
/// programmatically with Add(). Events are kept sorted by time, ties in
/// insertion order, so installing a schedule is a pure function of its
/// text — a prerequisite for replayable runs.
///
/// Scenario line format (`#` starts a comment, blank lines are skipped):
///
///   at <time> crash node <i>
///   at <time> recover node <i>
///   at <time> crash coordinator
///   at <time> recover coordinator
///   at <time> partition nodes <i...> | <j...>
///   at <time> heal nodes
///   at <time> partition regions <a> <b>
///   at <time> heal regions <a> <b>
///   at <time> link <i> <j> [drop <p>] [dup <p>] [delay <dur>]
///   at <time> clear link <i> <j>
///   at <time> skew node <i> <dur>
///   at <time> byzantine node <i> <flag>[,<flag>...]
///   at <time> honest node <i>
///   at <time> kill executors
///   at <time> suspend spawns
///   at <time> resume spawns
///   at <time> straggle executors <dur>
///
/// Node indexes are global and shard-major: with S shard planes of n
/// nodes each, index s*n+i names node i of shard s. The coordinator
/// verbs require a sharded (shard_count > 1) architecture.
///
/// Durations accept ns/us/ms/s suffixes ("250us", "1.5s"). Byzantine
/// flags: crash, equivocate, suppress-requests, dark=<actorid,...>,
/// spawn-delay=<dur>, spawn-count=<n>, duplicate-spawns=<n>.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Parses the declarative scenario format described above. Returns
  /// InvalidArgument naming the offending line on any syntax error.
  static Result<FaultSchedule> Parse(std::string_view text);

  /// Appends one event (kept sorted by time, stable for ties).
  void Add(FaultEvent event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Parses a duration literal like "250us", "1.5s", "800ms", "100ns".
Result<SimDuration> ParseDurationLiteral(std::string_view token);

}  // namespace sbft::faults

#endif  // SBFT_FAULTS_SCHEDULE_H_
