#ifndef SBFT_FAULTS_RUNNER_H_
#define SBFT_FAULTS_RUNNER_H_

#include <string>

#include "common/result.h"
#include "faults/scenario.h"

namespace sbft::faults {

/// \brief Outcome of one scenario run.
///
/// `commit_digest` is the hex head of the verifier's hash-chained audit
/// log — it commits to every applied/aborted sequence in order, so two
/// runs with the same (scenario, seed) must produce byte-identical
/// digests. That is the replayability contract the chaos runner enforces.
struct ScenarioReport {
  std::string scenario;
  uint64_t seed = 0;
  std::string commit_digest;
  bool audit_chain_ok = false;

  uint64_t audit_entries = 0;
  uint64_t completed_txns = 0;
  uint64_t aborted_txns = 0;
  uint64_t view_changes = 0;
  uint64_t client_retransmissions = 0;
  uint64_t executors_spawned = 0;
  uint64_t executors_killed = 0;
  uint64_t messages_dropped = 0;
  uint64_t fault_events_applied = 0;

  double latency_p50_ms = 0;
  double latency_p99_ms = 0;

  /// One-line rendering for the scenario_runner table.
  std::string OneLine() const;
};

/// Builds the architecture, installs the scenario's fault schedule, runs
/// to the scenario duration, and reports. InvalidArgument on a malformed
/// schedule.
Result<ScenarioReport> RunScenario(const Scenario& scenario);

}  // namespace sbft::faults

#endif  // SBFT_FAULTS_RUNNER_H_
