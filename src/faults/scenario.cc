#include "faults/scenario.h"

namespace sbft::faults {

namespace {

/// Small, fast architecture shared by the bundled scenarios: 4 shim nodes
/// (f_R = 1), 3 executors (f_E = 1), 8 closed-loop clients. Sized so one
/// scenario simulates in well under a wall-clock second while still
/// exercising batching, pipelining, checkpoints, and the Fig. 4 timers.
core::SystemConfig ScenarioBaseConfig(uint64_t seed) {
  core::SystemConfig config;
  config.shim.n = 4;
  config.shim.batch_size = 2;
  config.shim.checkpoint_interval = 8;
  config.n_e = 3;
  config.f_e = 1;
  config.num_clients = 8;
  config.client_timeout = Millis(400);
  config.workload.record_count = 1000;
  config.crypto_mode = crypto::CryptoMode::kFast;
  config.seed = seed;
  return config;
}

}  // namespace

std::vector<Scenario> BuiltinScenarios(uint64_t seed) {
  std::vector<Scenario> scenarios;

  {
    Scenario s;
    s.name = "primary_crash";
    s.description =
        "Primary crash-stops mid-run and later restarts; the shim replaces "
        "it via the view-change timers and the node catches up through "
        "featherweight checkpoints.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text =
        "at 1s crash node 0\n"
        "at 3500ms recover node 0\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "rolling_shim_crashes";
    s.description =
        "One shim node at a time crash-stops and recovers, rolling through "
        "three of the four nodes; consensus never loses its quorum.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text =
        "at 1s crash node 3\n"
        "at 2s recover node 3\n"
        "at 2500ms crash node 2\n"
        "at 3500ms recover node 2\n"
        "at 4s crash node 1\n"
        "at 5s recover node 1\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "partition_heal";
    s.description =
        "The primary is partitioned away from the three backups, the "
        "verifier's ERROR/Υ timers force a view change, and commits resume "
        "after the partition heals.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text =
        "at 1s partition nodes 0 | 1 2 3\n"
        "at 3s heal nodes\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "equivocating_primary";
    s.description =
        "The primary equivocates (two batches for one sequence number); "
        "safety must hold — honest nodes never diverge and the audit chain "
        "stays intact.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text = "at 500ms byzantine node 0 equivocate\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "executor_starvation";
    s.description =
        "The provider rejects every spawn for 1.5 simulated seconds "
        "(capacity exhaustion) while in-flight executors are massacred; "
        "the spawner's retry loop plus the verifier's respawn path recover "
        "once capacity returns.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text =
        "at 1s suspend spawns\n"
        "at 1s kill executors\n"
        "at 2500ms resume spawns\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lossy_wan";
    s.description =
        "Every shim-to-shim link drops, duplicates, and delays messages "
        "while executor regions flap in and out of a partition with the "
        "home site — the paper's asynchrony assumptions at full tilt.";
    s.config = ScenarioBaseConfig(seed);
    // Links among the four shim nodes: 6 pairs.
    s.schedule_text =
        "at 500ms link 0 1 drop 0.05 dup 0.05 delay 2ms\n"
        "at 500ms link 0 2 drop 0.05 dup 0.05 delay 2ms\n"
        "at 500ms link 0 3 drop 0.05 dup 0.05 delay 2ms\n"
        "at 500ms link 1 2 drop 0.05 dup 0.05 delay 2ms\n"
        "at 500ms link 1 3 drop 0.05 dup 0.05 delay 2ms\n"
        "at 500ms link 2 3 drop 0.05 dup 0.05 delay 2ms\n"
        "at 1500ms partition regions 0 2\n"
        "at 2500ms heal regions 0 2\n"
        "at 3s partition regions 0 3\n"
        "at 4s heal regions 0 3\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "executor_massacre";
    s.description =
        "All live executors are crash-stopped twice; committed sequences "
        "must still settle through the ERROR(kmax)/respawn path — "
        "respawns, never unsafety.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text =
        "at 1s kill executors\n"
        "at 3s kill executors\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "skewed_clocks";
    s.description =
        "Two shim nodes run with skewed clocks (all their traffic lags) "
        "and freshly spawned executors straggle; throughput droops but "
        "liveness and safety hold.";
    s.config = ScenarioBaseConfig(seed);
    s.schedule_text =
        "at 500ms skew node 2 3ms\n"
        "at 500ms skew node 3 5ms\n"
        "at 1s straggle executors 60ms\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "shard_partition";
    s.description =
        "Sharded plane (2 shards), 10% cross-shard 2PC: shard 0's primary "
        "is partitioned away from its backups while shard 1 keeps "
        "committing; cross-shard transactions touching the stalled shard "
        "resolve through the coordinator's presumed-abort timeout and "
        "commits resume after the heal — atomicity must hold throughout.";
    s.config = ScenarioBaseConfig(seed);
    s.config.shard_count = 2;
    s.config.workload.cross_shard_percentage = 10.0;
    s.config.coordinator_vote_timeout = Millis(600);
    // Global node indexes are shard-major: 0-3 = shard 0, 4-7 = shard 1.
    s.schedule_text =
        "at 1s partition nodes 0 | 1 2 3\n"
        "at 3s heal nodes\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "coordinator_crash_2pc";
    s.description =
        "Sharded plane (2 shards), 25% cross-shard 2PC: the coordinator "
        "crash-stops mid-protocol — between PREPARE votes and COMMIT "
        "decisions — leaving shards holding prepare locks. Participants "
        "re-send votes until the recovered coordinator answers from its "
        "durable decision log (or presumed-aborts in-doubt transactions); "
        "no shard may apply a write set another shard aborted.";
    s.config = ScenarioBaseConfig(seed);
    s.config.shard_count = 2;
    s.config.workload.cross_shard_percentage = 25.0;
    s.config.coordinator_vote_timeout = Millis(600);
    s.schedule_text =
        "at 1s crash coordinator\n"
        "at 2500ms recover coordinator\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lock_contention_2pc";
    s.description =
        "The unified commit path under fire: 2 shards, 50% cross-shard, "
        "30% hot-key conflicts over a small keyspace, bounded prepare-lock "
        "queueing (depth 8) and the fully-decided watermark both on, with "
        "the coordinator crash-stopping mid-protocol so shards sit on "
        "prepare locks with queued waiters behind them. Every waiter must "
        "resolve at a decision (never outlive one), queue depth stays "
        "within its cap, and 2PC bookkeeping stays watermark-pruned — "
        "while atomicity and the audit chains hold.";
    s.config = ScenarioBaseConfig(seed);
    s.config.shard_count = 2;
    s.config.num_clients = 16;
    s.config.workload.record_count = 400;
    s.config.workload.cross_shard_percentage = 50.0;
    s.config.workload.conflict_percentage = 30.0;
    s.config.workload.hot_keys = 4;
    s.config.conflicts_possible = true;
    s.config.n_e = 4;  // 3f_E + 1 under conflicts (§VI-B).
    s.config.coordinator_vote_timeout = Millis(600);
    s.config.prepare_lock_queue_depth = 8;
    s.config.twopc_watermark = true;
    s.config.twopc_decision_retention = Millis(1500);
    s.config.twopc_calibrated_costs = true;
    s.schedule_text =
        "at 1s crash coordinator\n"
        "at 2s recover coordinator\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "thundering_herd_retry";
    s.description =
        "Open-loop bursty traffic (on/off square wave above the small "
        "system's capacity) over 2 shards, with shard 1's backups "
        "crash-stopping mid-burst. Timed-out transactions retransmit to "
        "the verifiers while fresh arrivals keep landing — the thundering "
        "herd — but the per-source retry cap bounds the amplification, "
        "shedding the excess as counted drops instead of a retransmit "
        "storm, and commits resume when the nodes recover.";
    s.config = ScenarioBaseConfig(seed);
    s.config.shard_count = 2;
    s.config.workload.cross_shard_percentage = 10.0;
    s.config.coordinator_vote_timeout = Millis(600);
    s.config.traffic.open_loop = true;
    s.config.traffic.sources = 2;
    s.config.traffic.offered_tps = 900.0;
    s.config.traffic.arrival = workload::ArrivalKind::kBursty;
    s.config.traffic.burst_on = Millis(300);
    s.config.traffic.burst_off = Millis(700);
    s.config.traffic.burst_idle_fraction = 0.1;
    s.config.traffic.retry_timeout = Millis(300);
    s.config.traffic.retry_inflight_cap = 16;
    s.config.traffic.max_inflight = 600;
    // Shard-major node indexes: 4-7 = shard 1; crash two backups so the
    // shard stalls (quorum lost) for the middle of a burst window.
    s.schedule_text =
        "at 1200ms crash node 5\n"
        "at 1300ms crash node 6\n"
        "at 2600ms recover node 5\n"
        "at 2600ms recover node 6\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "gray_straggler_peak";
    s.description =
        "Open-loop diurnal traffic ramping to its peak exactly when the "
        "executor fleet turns gray (every spawned executor straggles) — "
        "the worst-case phase alignment. The verifier's ERROR/respawn "
        "timers and the source-side retry cap must absorb the peak; "
        "goodput dips but the system neither deadlocks nor melts into "
        "unbounded retransmits, and it drains once the stragglers clear.";
    s.config = ScenarioBaseConfig(seed);
    s.config.traffic.open_loop = true;
    s.config.traffic.sources = 2;
    s.config.traffic.offered_tps = 500.0;
    s.config.traffic.arrival = workload::ArrivalKind::kDiurnal;
    s.config.traffic.diurnal_trace = {0.2, 0.5, 1.0, 0.5, 0.2};
    s.config.traffic.diurnal_step = Millis(1000);
    s.config.traffic.retry_timeout = Millis(300);
    s.config.traffic.retry_inflight_cap = 16;
    s.config.traffic.max_inflight = 600;
    // The trace peaks in [2s, 3s); the gray phase covers it.
    s.schedule_text =
        "at 1800ms straggle executors 40ms\n"
        "at 3200ms straggle executors 0ms\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "coordinator_leader_crash_2pc";
    s.description =
        "Replicated coordinator group (3 members), 2 shards, 25% "
        "cross-shard 2PC: the serving leader crash-stops mid-protocol — "
        "prepare votes collected, decisions half-broadcast. A standby "
        "detects the silence, majority-syncs the replicated decision log, "
        "re-replicates it under its view, and finishes the in-flight "
        "transactions from retransmitted votes; participants follow the "
        "view-stamped redirects. Every decided transaction must resolve "
        "atomically, prepare locks must all release, and the old leader "
        "rejoins as a follower on recovery.";
    s.config = ScenarioBaseConfig(seed);
    s.config.shard_count = 2;
    s.config.workload.cross_shard_percentage = 25.0;
    s.config.coordinator_vote_timeout = Millis(600);
    s.config.coordinator_replicas = 3;
    s.config.coordinator_heartbeat = Millis(100);
    s.config.coordinator_failover_timeout = Millis(400);
    s.schedule_text =
        "at 1s crash coordinator leader\n"
        "at 3s recover coordinator 0\n";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "coordinator_partition_minority";
    s.description =
        "Replicated coordinator group (3 members), 2 shards, 25% "
        "cross-shard 2PC: the leader is partitioned away from both "
        "standbys (coordinator-to-coordinator links only — it still hears "
        "shards and clients). Its decision appends can no longer reach a "
        "quorum, so it stalls rather than decide alone; the majority side "
        "elects a new leader that finishes the in-flight work. After the "
        "heal the deposed leader learns the higher view from an append "
        "ack and demotes — two coordinators must never both serve "
        "decisions that contradict.";
    s.config = ScenarioBaseConfig(seed);
    s.config.shard_count = 2;
    s.config.workload.cross_shard_percentage = 25.0;
    s.config.coordinator_vote_timeout = Millis(600);
    s.config.coordinator_replicas = 3;
    s.config.coordinator_heartbeat = Millis(100);
    s.config.coordinator_failover_timeout = Millis(400);
    s.schedule_text =
        "at 1s partition coordinators 0 | 1 2\n"
        "at 3s heal coordinators\n";
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

Result<Scenario> FindScenario(const std::string& name, uint64_t seed) {
  for (Scenario& scenario : BuiltinScenarios(seed)) {
    if (scenario.name == name) return std::move(scenario);
  }
  return Status::NotFound("unknown scenario: " + name);
}

}  // namespace sbft::faults
