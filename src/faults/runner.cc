#include "faults/runner.h"

#include <cstdio>

#include "core/architecture.h"
#include "crypto/sha256.h"
#include "faults/controller.h"

namespace sbft::faults {

std::string ScenarioReport::OneLine() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "completed=%-6llu aborted=%-4llu view-changes=%-3llu "
                "retrans=%-4llu lat(p50=%.1fms p99=%.1fms) audit=%s "
                "digest=%.16s",
                static_cast<unsigned long long>(completed_txns),
                static_cast<unsigned long long>(aborted_txns),
                static_cast<unsigned long long>(view_changes),
                static_cast<unsigned long long>(client_retransmissions),
                latency_p50_ms, latency_p99_ms,
                audit_chain_ok ? "ok" : "BROKEN", commit_digest.c_str());
  return buf;
}

Result<ScenarioReport> RunScenario(const Scenario& scenario) {
  auto schedule = FaultSchedule::Parse(scenario.schedule_text);
  if (!schedule.ok()) return schedule.status();

  core::Architecture arch(scenario.config);
  FaultController controller(&arch);
  Status installed = controller.Install(*schedule);
  if (!installed.ok()) return installed;
  arch.SetRecording(true);
  arch.Start();
  arch.simulator()->RunUntil(scenario.duration);

  ScenarioReport report;
  report.scenario = scenario.name;
  report.seed = scenario.config.seed;
  if (arch.shard_count() == 1) {
    const storage::AuditLog& audit = arch.verifier()->audit_log();
    report.commit_digest = audit.head().ToHex();
    report.audit_chain_ok = audit.VerifyChain();
    report.audit_entries = audit.size();
  } else {
    // Sharded plane: the replay digest commits to every shard's batch
    // audit chain *and* its 2PC decision chain, in shard order.
    crypto::Sha256 combined;
    bool chains_ok = true;
    uint64_t entries = 0;
    for (uint32_t s = 0; s < arch.shard_count(); ++s) {
      const verifier::Verifier* v = arch.plane(s)->verifier();
      combined.Update(v->audit_log().head().data(), crypto::Digest::kSize);
      combined.Update(v->decision_log().head().data(),
                      crypto::Digest::kSize);
      chains_ok = chains_ok && v->audit_log().VerifyChain() &&
                  v->decision_log().VerifyChain();
      entries += v->audit_log().size() + v->decision_log().size();
    }
    report.commit_digest = combined.Finish().ToHex();
    report.audit_chain_ok = chains_ok;
    report.audit_entries = entries;
  }
  report.completed_txns = arch.TotalCompleted();
  report.aborted_txns = arch.TotalAborted();
  report.view_changes = arch.TotalViewChanges();
  report.client_retransmissions = arch.TotalRetransmissions();
  report.executors_spawned = 0;
  report.executors_killed = 0;
  for (uint32_t s = 0; s < arch.shard_count(); ++s) {
    report.executors_spawned += arch.plane(s)->spawner()->executors_spawned();
    report.executors_killed += arch.plane(s)->cloud()->executors_killed();
  }
  report.messages_dropped = arch.network()->messages_dropped();
  report.fault_events_applied = controller.events_applied();
  const Histogram latency = arch.MergedLatency();
  report.latency_p50_ms =
      static_cast<double>(latency.p50()) / static_cast<double>(kMillisecond);
  report.latency_p99_ms =
      static_cast<double>(latency.p99()) / static_cast<double>(kMillisecond);
  return report;
}

}  // namespace sbft::faults
