#include "faults/runner.h"

#include <cstdio>

#include "core/architecture.h"
#include "faults/controller.h"

namespace sbft::faults {

std::string ScenarioReport::OneLine() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "completed=%-6llu aborted=%-4llu view-changes=%-3llu "
                "retrans=%-4llu lat(p50=%.1fms p99=%.1fms) audit=%s "
                "digest=%.16s",
                static_cast<unsigned long long>(completed_txns),
                static_cast<unsigned long long>(aborted_txns),
                static_cast<unsigned long long>(view_changes),
                static_cast<unsigned long long>(client_retransmissions),
                latency_p50_ms, latency_p99_ms,
                audit_chain_ok ? "ok" : "BROKEN", commit_digest.c_str());
  return buf;
}

Result<ScenarioReport> RunScenario(const Scenario& scenario) {
  auto schedule = FaultSchedule::Parse(scenario.schedule_text);
  if (!schedule.ok()) return schedule.status();

  core::Architecture arch(scenario.config);
  FaultController controller(&arch);
  Status installed = controller.Install(*schedule);
  if (!installed.ok()) return installed;
  arch.SetRecording(true);
  arch.Start();
  arch.simulator()->RunUntil(scenario.duration);

  ScenarioReport report;
  report.scenario = scenario.name;
  report.seed = scenario.config.seed;
  const storage::AuditLog& audit = arch.verifier()->audit_log();
  report.commit_digest = audit.head().ToHex();
  report.audit_chain_ok = audit.VerifyChain();
  report.audit_entries = audit.size();
  report.completed_txns = arch.TotalCompleted();
  report.aborted_txns = arch.TotalAborted();
  report.view_changes = arch.TotalViewChanges();
  report.client_retransmissions = arch.TotalRetransmissions();
  report.executors_spawned = arch.spawner()->executors_spawned();
  report.executors_killed = arch.cloud()->executors_killed();
  report.messages_dropped = arch.network()->messages_dropped();
  report.fault_events_applied = controller.events_applied();
  const Histogram& latency = *arch.latency_histogram();
  report.latency_p50_ms =
      static_cast<double>(latency.p50()) / static_cast<double>(kMillisecond);
  report.latency_p99_ms =
      static_cast<double>(latency.p99()) / static_cast<double>(kMillisecond);
  return report;
}

}  // namespace sbft::faults
