#ifndef SBFT_FAULTS_CONTROLLER_H_
#define SBFT_FAULTS_CONTROLLER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/architecture.h"
#include "faults/schedule.h"
#include "sim/actor.h"

namespace sbft::faults {

/// \brief The actor that turns a FaultSchedule into live adversity.
///
/// Install() registers the controller with the architecture's network
/// (control plane only — it never exchanges protocol messages) and
/// schedules one simulator event per fault; Apply() maps each FaultKind
/// onto the corresponding runtime hook: Network link rules / partitions /
/// skew, replica crash & byzantine toggles, CloudSimulator executor
/// faults, and Spawner behaviour overrides. Because the simulator fires
/// equal-time events in scheduling order and every hook is deterministic,
/// a (scenario, seed) pair replays to an identical run.
class FaultController : public sim::Actor {
 public:
  /// Well-known actor id of the controller (outside every other range).
  static constexpr ActorId kControllerId = 900100;

  /// Construct after (and destroy before) the Architecture: the
  /// destructor unregisters from its network.
  explicit FaultController(core::Architecture* arch);
  ~FaultController() override;

  /// Validates the schedule against the architecture (node indexes and
  /// regions must exist) and schedules every event; call once, before
  /// running. Returns InvalidArgument naming the offending event when a
  /// target does not resolve — a typo'd scenario must not silently
  /// become a fault-free run.
  Status Install(const FaultSchedule& schedule);

  void OnMessage(const sim::Envelope& env) override {}

  uint64_t events_applied() const { return events_applied_; }

  /// Human-readable trace of applied events ("1.000s crash node 0", ...).
  const std::vector<std::string>& applied_log() const { return applied_log_; }

 private:
  Status Validate(const FaultEvent& event) const;
  void Apply(const FaultEvent& event);

  /// Actor id of shim node index `i` (kInvalidActor when out of range).
  ActorId ShimActor(uint32_t index) const;

  /// Crash/recover dispatch across the active shim protocol.
  void SetReplicaCrashed(uint32_t index, bool crashed);
  void SetReplicaBehavior(uint32_t index,
                          const shim::ByzantineBehavior& behavior);

  core::Architecture* arch_;
  bool installed_ = false;
  uint64_t events_applied_ = 0;
  std::vector<std::string> applied_log_;
};

}  // namespace sbft::faults

#endif  // SBFT_FAULTS_CONTROLLER_H_
