#ifndef SBFT_FAULTS_SCENARIO_H_
#define SBFT_FAULTS_SCENARIO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "faults/schedule.h"

namespace sbft::faults {

/// \brief One named, replayable chaos run: a system configuration plus a
/// declarative fault schedule and a duration.
///
/// Scenarios are fully deterministic: the same (scenario, seed) pair
/// always produces the same commit history (see runner.h).
struct Scenario {
  std::string name;
  std::string description;
  core::SystemConfig config;
  /// Declarative fault schedule (FaultSchedule::Parse format).
  std::string schedule_text;
  SimDuration duration = Seconds(6);
};

/// The bundled scenario catalogue (≥6 scenarios: primary crash, rolling
/// shim crashes, region partition + heal, equivocating primary, executor
/// starvation, lossy WAN, ...), instantiated for `seed`.
std::vector<Scenario> BuiltinScenarios(uint64_t seed);

/// Looks up one bundled scenario by name.
Result<Scenario> FindScenario(const std::string& name, uint64_t seed);

}  // namespace sbft::faults

#endif  // SBFT_FAULTS_SCENARIO_H_
