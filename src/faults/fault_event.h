#ifndef SBFT_FAULTS_FAULT_EVENT_H_
#define SBFT_FAULTS_FAULT_EVENT_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "shim/shim_config.h"
#include "sim/network.h"

namespace sbft::faults {

/// What a scheduled fault event does when its time comes. Each kind maps
/// onto one runtime hook of the simulation (network, shim replicas, cloud,
/// spawner); the FaultController owns the mapping.
enum class FaultKind : uint8_t {
  kCrashReplica = 0,     ///< Crash-stop shim node `node`.
  kRecoverReplica,       ///< Un-crash shim node `node` (checkpoint catch-up).
  kPartitionNodes,       ///< Cut every link between group_a and group_b.
  kHealNodes,            ///< Restore all links among the shim nodes.
  kPartitionRegions,     ///< Partition regions region_a | region_b.
  kHealRegions,          ///< Heal the region pair.
  kLinkRule,             ///< Install per-link drop/dup/delay between
                         ///< nodes `node` and `node_b`.
  kClearLinkRule,        ///< Remove the per-link rule.
  kClockSkew,            ///< Delay all traffic of `node` by `delay`.
  kSetByzantine,         ///< Switch node `node` to `behavior`.
  kClearByzantine,       ///< Return node `node` to honesty.
  kKillExecutors,        ///< Crash-stop every live executor (all shards).
  kSuspendSpawns,        ///< Provider rejects all spawns (starvation).
  kResumeSpawns,         ///< Provider accepts spawns again.
  kStraggleExecutors,    ///< Extra start latency `delay` on future spawns.
  kCrashCoordinator,     ///< Crash-stop the cross-shard 2PC coordinator.
  kRecoverCoordinator,   ///< Recover it (volatile state lost, decision
                         ///< log kept).
  // Replicated coordinator group (DESIGN.md §10). `node` is the member
  // index within the group, not a shim node index.
  kCrashCoordinatorMember,    ///< Crash-stop group member `node`.
  kCrashCoordinatorLeader,    ///< Crash-stop whichever member currently
                              ///< leads (resolved when the event fires).
  kRecoverCoordinatorMember,  ///< Recover group member `node`.
  kPartitionCoordinators,     ///< Cut coordinator-to-coordinator links
                              ///< between group_a and group_b (member
                              ///< indexes); shard/client links stay up.
  kHealCoordinators,          ///< Restore all coordinator group links.
};

/// One timed fault, interpreted by FaultController at SimTime `at`.
/// Which fields are meaningful depends on `kind` (see the enum docs);
/// node references are *global* shim node indexes (0..S*n-1, shard-major:
/// index s*n+i is node i of shard s), not actor ids.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCrashReplica;

  uint32_t node = 0;    ///< Primary node operand.
  uint32_t node_b = 0;  ///< Second endpoint for kLinkRule/kClearLinkRule.
  sim::RegionId region_a = 0;
  sim::RegionId region_b = 0;
  std::vector<uint32_t> group_a;  ///< kPartitionNodes side A.
  std::vector<uint32_t> group_b;  ///< kPartitionNodes side B.
  sim::LinkRule rule;             ///< kLinkRule payload.
  SimDuration delay = 0;          ///< kClockSkew / kStraggleExecutors.
  shim::ByzantineBehavior behavior;  ///< kSetByzantine payload.
};

}  // namespace sbft::faults

#endif  // SBFT_FAULTS_FAULT_EVENT_H_
